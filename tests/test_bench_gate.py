"""Tests for the CI benchmark regression gate
(benchmarks/check_bench_regression.py): per-runner calibration
normalization, clamping, and exit codes.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).parent.parent / "benchmarks"
    / "check_bench_regression.py",
)
gate = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_bench_regression", gate)
_SPEC.loader.exec_module(gate)


def _write_report(path: Path, means: dict[str, float]) -> Path:
    report = {"benchmarks": [
        {"fullname": name, "stats": {"mean": mean}}
        for name, mean in means.items()
    ]}
    path.write_text(json.dumps(report), encoding="ascii")
    return path


def _write_baseline(path: Path, means: dict[str, float],
                    max_slowdown: float = 1.5,
                    calibration: float | None = 0.1) -> Path:
    baseline: dict = {"max_slowdown": max_slowdown,
                      "benchmarks": means}
    if calibration is not None:
        baseline["calibration"] = calibration
    path.write_text(json.dumps(baseline), encoding="ascii")
    return path


class TestCalibrationFactor:
    def test_identity_without_measurements(self):
        assert gate.calibration_factor(None, 0.1) == 1.0
        assert gate.calibration_factor(0.1, None) == 1.0

    def test_ratio(self):
        assert gate.calibration_factor(0.1, 0.2) == pytest.approx(2.0)
        assert gate.calibration_factor(0.2, 0.1) == pytest.approx(0.5)

    def test_clamped(self):
        lo, hi = gate.CALIBRATION_CLAMP
        assert gate.calibration_factor(0.1, 10.0) == hi
        assert gate.calibration_factor(10.0, 0.1) == lo


class TestMeasureCalibration:
    def test_positive_and_repeatable_order_of_magnitude(self):
        first = gate.measure_calibration(repeats=1)
        second = gate.measure_calibration(repeats=1)
        assert first > 0 and second > 0
        assert 0.2 < first / second < 5.0


class TestCheck:
    NAME = "benchmarks/bench_x.py::test_y"

    def test_passes_within_tolerance(self, tmp_path, capsys):
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 1.4})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 1.0})
        code = gate.check(report, baseline, None,
                          runner_calibration=0.1)
        assert code == 0
        assert "1.40x" in capsys.readouterr().out

    def test_fails_beyond_tolerance(self, tmp_path, capsys):
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 1.6})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 1.0})
        code = gate.check(report, baseline, None,
                          runner_calibration=0.1)
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_slow_runner_normalized_to_pass(self, tmp_path, capsys):
        """A 2x-slower runner (kernel 0.2 vs 0.1) with 2x-slower
        benches is machine speed, not a regression."""
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 2.0})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 1.0})
        code = gate.check(report, baseline, None,
                          runner_calibration=0.2)
        assert code == 0
        out = capsys.readouterr().out
        assert "normalizing by 2.00x" in out

    def test_regression_on_slow_runner_still_fails(self, tmp_path):
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 3.5})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 1.0})
        assert gate.check(report, baseline, None,
                          runner_calibration=0.2) == 1

    def test_no_calibration_flag_compares_raw(self, tmp_path):
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 2.0})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 1.0})
        assert gate.check(report, baseline, None,
                          calibrate=False) == 1

    def test_new_and_missing_benchmarks_not_gated(self, tmp_path,
                                                  capsys):
        report = _write_report(tmp_path / "r.json",
                               {"new::bench": 9.9})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {"old::bench": 1.0})
        code = gate.check(report, baseline, None,
                          runner_calibration=0.1)
        assert code == 0
        out = capsys.readouterr().out
        assert "NEW" in out and "MISSING" in out

    def test_update_baseline_records_calibration(self, tmp_path,
                                                 monkeypatch):
        report = _write_report(tmp_path / "r.json",
                               {self.NAME: 1.23456})
        baseline = _write_baseline(tmp_path / "b.json",
                                   {self.NAME: 9.0})
        monkeypatch.setattr(gate, "measure_calibration",
                            lambda repeats=3: 0.0777)
        assert gate.update_baseline(report, baseline) == 0
        refreshed = json.loads(baseline.read_text())
        assert refreshed["benchmarks"][self.NAME] == 1.235
        assert refreshed["calibration"] == 0.0777

    def test_checked_in_baseline_declares_tight_gate(self):
        baseline = json.loads(
            (Path(__file__).parent.parent / "benchmarks"
             / "baseline.json").read_text())
        assert baseline["max_slowdown"] == 1.5
        assert baseline["calibration"] > 0
