"""Cross-validation of the linear bitvector aligners.

Four independent implementations of fitting-alignment semantics are
checked against each other: the vectorized DP (:mod:`dp_linear`), the
1-active left-to-right Bitap, Myers' bit-vector algorithm, and the
0-active right-to-left GenASM.  Any disagreement indicates a bug in
one of them — this is the foundation BitAlign's correctness rests on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.bitap import bitap_distance, bitap_search
from repro.align.dp_linear import semiglobal_distance
from repro.align.genasm import genasm_align, genasm_distance
from repro.align.myers import myers_distance, myers_search
from repro.core.alignment import replay_alignment

text_strategy = st.text(alphabet="ACGT", min_size=0, max_size=80)
pattern_strategy = st.text(alphabet="ACGT", min_size=1, max_size=24)


class TestBitap:
    def test_exact_occurrence(self):
        matches = bitap_search("AAACGTAAA", "ACGT", k=0)
        assert (5, 0) in matches  # ends at index 5

    def test_no_match_within_k(self):
        assert bitap_distance("AAAA", "TTTT", k=2) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            bitap_search("ACGT", "", k=1)
        with pytest.raises(ValueError):
            bitap_search("ACGT", "A", k=-1)

    @settings(max_examples=200, deadline=None)
    @given(text_strategy, pattern_strategy)
    def test_matches_dp(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        k = min(len(pattern), dp + 2)
        found = bitap_distance(text, pattern, k)
        if dp <= k:
            assert found == dp
        else:
            assert found is None


class TestMyers:
    def test_exact_occurrence(self):
        assert myers_distance("AAACGTAAA", "ACGT") == 0

    def test_empty_text(self):
        assert myers_distance("", "ACGT") == 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            myers_search("ACGT", "")

    @settings(max_examples=200, deadline=None)
    @given(text_strategy, pattern_strategy)
    def test_matches_dp(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        assert myers_distance(text, pattern) == dp

    @settings(max_examples=50, deadline=None)
    @given(text_strategy.filter(bool), pattern_strategy)
    def test_per_position_scores_match_dp_columns(self, text, pattern):
        """Myers' score at position i == best distance of pattern vs a
        substring ending at i."""
        scores = dict(myers_search(text, pattern))
        for end in range(1, len(text) + 1):
            best = min(
                semiglobal_distance(text[start:end], pattern)[0]
                # distance of pattern against text[start:end] aligned to
                # its very end:
                for start in range(end + 1)
            )
            # semiglobal frees both flanks; score[i] anchors the end, so
            # score[i] >= best over substrings (cannot beat free flanks).
            assert scores[end - 1] >= best


class TestGenasm:
    def test_exact_occurrence_reports_start(self):
        result = genasm_distance("AAACGTAAA", "ACGT", k=0)
        assert result == (0, 2)

    def test_none_when_over_threshold(self):
        assert genasm_distance("AAAA", "TTTT", k=2) is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            genasm_distance("ACGT", "", k=1)
        with pytest.raises(ValueError):
            genasm_distance("ACGT", "A", k=-1)

    @settings(max_examples=200, deadline=None)
    @given(text_strategy, pattern_strategy)
    def test_matches_dp(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        k = min(len(pattern), dp + 2)
        result = genasm_distance(text, pattern, k)
        if dp <= k:
            assert result is not None
            assert result[0] == dp
        else:
            assert result is None

    @settings(max_examples=200, deadline=None)
    @given(text_strategy, pattern_strategy)
    def test_traceback_replays_at_optimal_distance(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        k = min(len(pattern), dp + 2)
        result = genasm_align(text, pattern, k)
        if dp > k:
            assert result is None
            return
        assert result is not None
        assert result.distance == dp
        consumed = text[result.text_start:result.text_end] \
            if result.text_start >= 0 else ""
        assert replay_alignment(result.cigar, pattern, consumed) == dp


class TestAgreementMatrix:
    """All four implementations agree on a batch of tricky fixed cases."""

    CASES = [
        ("ACGTACGT", "ACGT"),
        ("ACGTACGT", "ACCT"),
        ("AAAAAAA", "AAA"),
        ("ACGT", "TTTT"),
        ("A", "ACGTACGT"),       # pattern longer than text
        ("ACACACAC", "CACA"),    # periodic
        ("GGGG", "G"),
        ("TTTT", "TTTTTTTT"),
    ]

    @pytest.mark.parametrize("text,pattern", CASES)
    def test_agreement(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        assert myers_distance(text, pattern) == dp
        assert bitap_distance(text, pattern, k=len(pattern)) == dp
        genasm = genasm_distance(text, pattern, k=len(pattern))
        assert genasm is not None and genasm[0] == dp
