"""Property tests for CIGAR composition — the windowing merge's
foundation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.alignment import Cigar

ops_strategy = st.lists(st.sampled_from("=XID"), min_size=0,
                        max_size=40)


class TestConcatProperties:
    @given(ops_strategy, ops_strategy)
    def test_concat_equals_flat_concatenation(self, left, right):
        merged = Cigar.from_ops(left).concat(Cigar.from_ops(right))
        assert merged == Cigar.from_ops(left + right)

    @given(ops_strategy, ops_strategy)
    def test_concat_preserves_counts(self, left, right):
        a, b = Cigar.from_ops(left), Cigar.from_ops(right)
        merged = a.concat(b)
        assert merged.edit_distance == a.edit_distance + b.edit_distance
        assert merged.read_consumed == a.read_consumed + b.read_consumed
        assert merged.ref_consumed == a.ref_consumed + b.ref_consumed

    @given(ops_strategy, ops_strategy, ops_strategy)
    def test_concat_associative(self, a, b, c):
        x, y, z = (Cigar.from_ops(ops) for ops in (a, b, c))
        assert x.concat(y).concat(z) == x.concat(y.concat(z))

    @given(ops_strategy)
    def test_string_roundtrip(self, ops):
        cigar = Cigar.from_ops(ops)
        assert Cigar.from_string(str(cigar)) == cigar

    @given(ops_strategy)
    def test_runs_are_maximal(self, ops):
        cigar = Cigar.from_ops(ops)
        for (op1, _), (op2, _) in zip(cigar.ops, cigar.ops[1:]):
            assert op1 != op2
