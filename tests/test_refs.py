"""Tests for the multi-contig reference abstraction (repro.refs).

Covers ReferenceSet construction and validation, global <-> contig
coordinate translation, the single-contig bit-for-bit degeneration,
and the contig-boundary clamping contract: reads seeding near (or
across) a contig boundary must never produce candidate regions or
alignments spanning two contigs — including on the reverse strand and
through the mate-rescue path.
"""

from __future__ import annotations

import random

import pytest

from repro import seq as seqmod
from repro.core.mapper import MappingResult, SeGraM, SeGraMConfig
from repro.core.minseed import MinSeed
from repro.core.pairing import PairedEndConfig, PairedEndMapper
from repro.core.windows import WindowingConfig
from repro.graph.builder import build_graph
from repro.graph.genome_graph import GenomeGraph
from repro.io.vcf import VcfRecord
from repro.refs import Contig, ReferenceSetError, ReferenceSet
from repro.sim.reference import multi_contig_reference, random_reference


CONFIG = SeGraMConfig(
    w=10, k=15, bucket_bits=12, error_rate=0.05,
    windowing=WindowingConfig(window_size=128, overlap=48, k=16),
    max_seeds_per_read=8, both_strands=True,
)


@pytest.fixture(scope="module")
def contigs():
    rng = random.Random(0xC0117)
    return multi_contig_reference([5_000, 4_000, 3_000], rng)


@pytest.fixture(scope="module")
def refs(contigs):
    return ReferenceSet.from_records(contigs, max_node_length=1_024)


@pytest.fixture(scope="module")
def mapper(refs):
    return SeGraM.from_reference_set(refs, config=CONFIG)


class TestContig:
    def test_linear_and_graph_backing(self):
        linear = Contig.linear("chrA", "ACGTACGT")
        assert linear.is_linear and linear.length == 8
        graph = GenomeGraph()
        graph.add_node("ACGTAC")
        backed = Contig.from_graph("g1", graph)
        assert not backed.is_linear and backed.length == 6

    def test_exactly_one_backing_required(self):
        with pytest.raises(ReferenceSetError):
            Contig(name="x")
        graph = GenomeGraph()
        graph.add_node("ACGT")
        with pytest.raises(ReferenceSetError):
            Contig(name="x", sequence="ACGT", graph=graph)

    def test_invalid_names_rejected(self):
        with pytest.raises(ReferenceSetError):
            Contig.linear("", "ACGT")
        with pytest.raises(ReferenceSetError):
            Contig.linear("chr 1", "ACGT")


class TestReferenceSetConstruction:
    def test_contiguous_partition(self, contigs, refs):
        spans = refs.char_spans()
        assert spans[0][0] == 0
        assert spans[-1][1] == refs.graph.total_sequence_length
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        lengths = [len(seq) for _, seq in contigs]
        assert [hi - lo for lo, hi in spans] == lengths
        assert refs.sam_contigs() == \
            [(name, len(seq)) for name, seq in contigs]

    def test_no_inter_contig_edges(self, refs):
        graph = refs.graph
        assert graph.is_topologically_sorted()
        for name in refs.names:
            lo, hi = refs.char_span(name)
            first, _ = graph.node_at_offset(lo)
            last, _ = graph.node_at_offset(hi - 1)
            for src, dst in graph.edges():
                # An edge never leaves the contig's node range.
                assert (first <= src <= last) == (first <= dst <= last)
            break  # one contig suffices; the rule is range-symmetric

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReferenceSetError):
            ReferenceSet([Contig.linear("c", "ACGTACGT"),
                          Contig.linear("c", "TTTTACGT")])
        with pytest.raises(ReferenceSetError):
            ReferenceSet([])

    def test_backbones_spell_contigs(self, contigs, refs):
        for name, sequence in contigs:
            assert refs.backbone(name) == sequence

    def test_single_contig_matches_build_graph(self):
        rng = random.Random(3)
        sequence = random_reference(2_000, rng)
        refs = ReferenceSet.from_records([("chr1", sequence)],
                                         max_node_length=512)
        built = build_graph(sequence, name="chr1",
                            max_node_length=512)
        assert refs.graph.node_count == built.graph.node_count
        for node in range(built.graph.node_count):
            assert refs.graph.sequence_of(node) == \
                built.graph.sequence_of(node)
        assert sorted(refs.graph.edges()) == \
            sorted(built.graph.edges())

    def test_vcf_routing_by_chrom(self):
        rng = random.Random(11)
        seqs = multi_contig_reference([800, 700], rng)
        (n1, s1), (n2, s2) = seqs
        alt1 = "G" if s1[100] != "G" else "C"
        refs = ReferenceSet.from_records(
            seqs, [VcfRecord(n1, 101, s1[100], alt1)],
            max_node_length=256,
        )
        # The variant splits chr1's backbone but not chr2's.
        assert refs.alt_nodes_of(n1)
        assert not refs.alt_nodes_of(n2)
        # Alt nodes are combined-graph IDs inside chr1's node range.
        for node in refs.alt_nodes_of(n1):
            assert refs.contig_of_node(node) == n1
        with pytest.raises(ReferenceSetError):
            ReferenceSet.from_records(
                seqs, [VcfRecord("chrX", 10, s1[9], "A")])

    def test_graph_backed_contig(self, contigs):
        graph = GenomeGraph(name="gfa")
        a = graph.add_node("ACGTACGTGGAA")
        b = graph.add_node("TTGACCAGGTCA")
        graph.add_edge(a, b)
        refs = ReferenceSet([
            Contig.linear("chr1", contigs[0][1]),
            Contig.from_graph("g1", graph),
        ])
        assert refs.backbone("g1") is None
        node = refs.graph.node_count - 1
        name, local = refs.project(node, 3)
        assert name == "g1" and local is None


class TestCoordinateTranslation:
    def test_contig_of_char_at_boundaries(self, refs):
        for name in refs.names:
            lo, hi = refs.char_span(name)
            assert refs.contig_of_char(lo) == name
            assert refs.contig_of_char(hi - 1) == name
        with pytest.raises(ReferenceSetError):
            refs.contig_of_char(-1)
        with pytest.raises(ReferenceSetError):
            refs.contig_of_char(refs.graph.total_sequence_length)

    def test_project_round_trips_positions(self, contigs, refs):
        # Every contig's first and last base projects to local 0 /
        # length-1 on the right contig.
        for name, sequence in contigs:
            lo, hi = refs.char_span(name)
            for offset, expected in ((lo, 0),
                                     (hi - 1, len(sequence) - 1)):
                node, in_node = refs.graph.node_at_offset(offset)
                contig, local = refs.project(node, in_node)
                assert (contig, local) == (name, expected)

    def test_contig_of_node_partitions(self, refs):
        seen = {name: 0 for name in refs.names}
        for node in range(refs.graph.node_count):
            seen[refs.contig_of_node(node)] += 1
        assert all(count > 0 for count in seen.values())
        with pytest.raises(ReferenceSetError):
            refs.contig_of_node(refs.graph.node_count)

    def test_char_hint_clamps(self, refs):
        name = refs.names[1]
        lo, hi = refs.char_span(name)
        assert refs.char_hint(name, 0) == lo
        assert refs.char_hint(name, 10 ** 9) == hi - 1


class TestBoundaryClamping:
    """Satellite: no region or alignment may span two contigs."""

    def test_seed_regions_clamped_at_boundaries(self, contigs, refs,
                                                mapper):
        minseed: MinSeed = mapper.minseed
        spans = {name: refs.char_span(name) for name in refs.names}
        # A read from the very end of chr1: its rightward extension
        # would cross into chr2's character space without clamping.
        (n1, s1), (n2, s2) = contigs[0], contigs[1]
        # The pipeline seeds reverse-strand reads after reverse-
        # complementing them, so the oriented read below is exactly
        # what a '-' mapping of its RC would seed — both strands hit
        # this clamp.
        for read in (
            s1[-300:],                       # right boundary of chr1
            s2[:300],                        # left boundary of chr2
        ):
            regions, _ = minseed.seed(read)
            assert regions, "boundary read must still seed"
            for region in regions:
                lo, hi = spans[refs.contig_of_char(region.start)]
                assert lo <= region.start < region.end <= hi

    def test_unclamped_seeding_would_cross(self, contigs, refs):
        """The clamp is load-bearing: the same seeds without
        char_spans produce regions crossing the chr1/chr2 line."""
        (n1, s1), _ = contigs[0], contigs[1]
        bare = MinSeed(refs.graph, SeGraM.from_reference_set(
            refs, config=CONFIG).index, error_rate=CONFIG.error_rate)
        regions, _ = bare.seed(s1[-300:])
        boundary = refs.char_span(n1)[1]
        assert any(r.end > boundary for r in regions)

    def test_junction_read_maps_within_one_contig(self, contigs,
                                                  mapper, refs):
        """A read straddling the concatenation junction must not be
        placed across two contigs (there is no such locus)."""
        (n1, s1), (n2, s2) = contigs[0], contigs[1]
        junction = s1[-150:] + s2[:150]
        for read in (junction, seqmod.reverse_complement(junction)):
            result = mapper.map_read(read, "junction")
            if not result.mapped:
                continue
            homes = {refs.contig_of_node(node)
                     for node in result.path_nodes}
            assert len(homes) == 1
            home = homes.pop()
            assert result.contig == home
            length = dict(refs.sam_contigs())[home]
            assert 0 <= result.linear_position < length

    def test_mapped_reads_stay_contig_local(self, contigs, mapper):
        for name, sequence in contigs:
            read = sequence[-240:]
            result = mapper.map_read(read, f"{name}_tail")
            assert result.mapped
            assert result.contig == name
            assert result.linear_position == len(sequence) - 240

    def test_rescue_window_clamped_to_anchor_contig(self, contigs,
                                                    refs, mapper):
        """Mate rescue near a contig end must not search (or place)
        across the boundary, even though chr2's characters directly
        follow chr1's in the global space."""
        (n1, s1), (n2, s2) = contigs[0], contigs[1]
        engine = PairedEndMapper(mapper, PairedEndConfig(
            insert_mean=350.0, insert_std=50.0))
        anchor = mapper.map_read(s1[-150:], "anchor/1")
        assert anchor.contig == n1
        # The would-be mate lies at the start of chr2 — adjacent in
        # global characters, unreachable within the anchor's contig.
        foreign = seqmod.reverse_complement(s2[:150])
        rescued = engine._rescue_mate(anchor, foreign, 2)
        assert rescued is None or (
            rescued.contig == n1
            and 0 <= rescued.linear_position < len(s1)
        )
        # A genuine intra-contig mate near the same boundary rescues
        # into chr1 coordinates.
        inward = seqmod.reverse_complement(s1[-120:])
        recovered = engine._rescue_mate(anchor, inward, 2)
        assert recovered is not None
        assert recovered.contig == n1
        assert 0 <= recovered.linear_position < len(s1)


class TestCrossContigScoring:
    def test_score_combo_cross_contig_never_proper(self, mapper):
        engine = PairedEndMapper(mapper, PairedEndConfig())
        from repro.core.alignment import Cigar

        def placed(contig, position, strand):
            return MappingResult(
                read_name="m", read_length=100, mapped=True,
                distance=0, cigar=Cigar.from_string("100="),
                linear_position=position, contig=contig,
                strand=strand,
            )

        cross = engine._score_combo(placed("chr1", 100, "+"),
                                    placed("chr2", 380, "-"))
        assert cross is not None
        assert not cross.proper
        assert cross.template_length is None
        assert cross.score == engine.config.unpaired_penalty
        intra = engine._score_combo(placed("chr1", 100, "+"),
                                    placed("chr1", 380, "-"))
        assert intra.proper
        assert intra.score < cross.score
