"""Tests for the cycle-level accelerator simulator."""

from __future__ import annotations

import random

import pytest

from repro.graph.genome_graph import GenomeGraph
from repro.graph.linearize import linearize
from repro.hw.bitalign_unit import BitAlignCycleModel
from repro.hw.config import BitAlignUnitConfig, SeGraMSystemConfig
from repro.hw.simulator import SeGraMAcceleratorSim
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.reference import random_reference


@pytest.fixture(scope="module")
def chain_3kb():
    rng = random.Random(42)
    text = random_reference(4_000, rng)
    return text, linearize(GenomeGraph.from_linear(text,
                                                   node_length=256))


class TestSimulator:
    def test_functional_result_unchanged_by_simulation(self, chain_3kb):
        text, lin = chain_3kb
        read = text[500:1_500]
        sim = SeGraMAcceleratorSim()
        result, trace = sim.run_seed_task(lin, read, anchor=(500, 0))
        assert result.distance == 0
        assert trace.windows_executed > 0

    def test_cycles_close_to_analytical_model(self, chain_3kb):
        """The simulator and the spreadsheet model must agree on the
        paper's design point for a clean exact read (within 15 %)."""
        text, lin = chain_3kb
        read = text[200:3_200]  # 3 kbp exact read
        sim = SeGraMAcceleratorSim()
        _, trace = sim.run_seed_task(lin, read, anchor=(200, 0))
        analytical = BitAlignCycleModel().alignment_cycles(len(read))
        assert trace.compute_cycles == \
            pytest.approx(analytical, rel=0.15)

    def test_window_count_matches_model(self, chain_3kb):
        text, lin = chain_3kb
        read = text[200:3_200]
        sim = SeGraMAcceleratorSim()
        _, trace = sim.run_seed_task(lin, read, anchor=(200, 0))
        assert trace.windows_executed == \
            BitAlignCycleModel().window_count(len(read))

    def test_noisy_reads_cost_more_cycles(self, chain_3kb):
        """Data-dependence the analytical model folds into its
        overhead term: noise can trigger rescues, never fewer
        cycles."""
        text, lin = chain_3kb
        rng = random.Random(7)
        fragment = text[200:2_200]
        noisy, _ = apply_errors(fragment, ErrorModel.nanopore(0.12), rng)
        sim = SeGraMAcceleratorSim()
        _, clean_trace = sim.run_seed_task(lin, fragment,
                                           anchor=(200, 0))
        _, noisy_trace = sim.run_seed_task(lin, noisy, anchor=(200, 0))
        assert noisy_trace.total_cycles >= \
            clean_trace.total_cycles * 0.9

    def test_memory_stall_charged(self, chain_3kb):
        text, lin = chain_3kb
        sim = SeGraMAcceleratorSim()
        _, trace = sim.run_seed_task(lin, text[100:400],
                                     anchor=(100, 0))
        assert trace.memory_stall_cycles > 0

    def test_bitvector_traffic_counted(self, chain_3kb):
        text, lin = chain_3kb
        sim = SeGraMAcceleratorSim()
        _, trace = sim.run_seed_task(lin, text[100:400],
                                     anchor=(100, 0))
        # Each window writes (k+1) x chunk bitvectors of 16 B.
        assert trace.bitvector_bytes_written > 0
        assert trace.bitvector_bytes_written % 16 == 0

    def test_hops_generate_queue_reads(self):
        from repro.graph.builder import Variant, build_graph
        built = build_graph("ACGTACGTACGTACGTACGTACGT" * 8,
                            [Variant(20, 21, "C"), Variant(50, 53, "")])
        lin = linearize(built.graph)
        sim = SeGraMAcceleratorSim()
        read = built.backbone_sequence()[10:80]
        _, trace = sim.run_seed_task(lin, read, anchor=(10, 0))
        assert trace.hop_queue_reads > 0

    def test_hop_queue_capacity_check(self):
        from repro.graph.builder import Variant, build_graph
        # A 30-base deletion: one hop of length 31, beyond depth 12.
        built = build_graph("A" * 20 + "C" * 30 + "G" * 20,
                            [Variant(20, 50, "")])
        lin = linearize(built.graph)
        sim = SeGraMAcceleratorSim()
        coverage = sim.hop_queue_capacity_ok(lin)
        assert coverage < 1.0
        deep = SeGraMAcceleratorSim(SeGraMSystemConfig(
            bitalign=BitAlignUnitConfig(hop_queue_depth=64),
        ))
        assert deep.hop_queue_capacity_ok(lin) == 1.0

    def test_windowing_config_derived_from_hw(self):
        sim = SeGraMAcceleratorSim()
        config = sim.windowing_config()
        assert config.window_size == 128
        assert config.overlap == 48
