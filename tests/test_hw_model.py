"""Tests for the hardware model: every published anchor must hold."""

from __future__ import annotations

import pytest

from repro.hw.area_power import AreaPowerModel
from repro.hw.bitalign_unit import BitAlignCycleModel
from repro.hw.config import (
    BitAlignUnitConfig,
    MinSeedUnitConfig,
    SeGraMSystemConfig,
)
from repro.hw.hbm import HbmChannelModel, HbmStackModel
from repro.hw.minseed_unit import MinSeedCycleModel, expected_minimizer_count
from repro.hw.pipeline import SeGraMPerformanceModel, WorkloadProfile
from repro.hw import baselines


class TestConfig:
    def test_paper_design_point(self):
        system = SeGraMSystemConfig()
        assert system.total_accelerators == 32
        assert system.bitalign.pe_count == 64
        assert system.bitalign.bits_per_pe == 128
        assert system.bitalign.hop_queue_depth == 12
        assert system.frequency_ghz == 1.0

    def test_minseed_scratchpads_fit_stated_limits(self):
        # Section 8.1: 6 kB read, 40 kB minimizer, 4 kB seed
        # scratchpads hold double-buffered worst cases.
        MinSeedUnitConfig().validate()

    def test_bitalign_derived_sizes(self):
        ba = BitAlignUnitConfig()
        assert ba.bitvector_bytes == 16  # 128 bits
        assert ba.total_bitvector_scratchpad_bytes == 128 * 1024
        assert ba.total_hop_queue_bytes == 12 * 1024  # 192 B x 64 PEs

    def test_validation(self):
        with pytest.raises(ValueError):
            BitAlignUnitConfig(pe_count=0)
        with pytest.raises(ValueError):
            BitAlignUnitConfig(window_overlap=128)
        with pytest.raises(ValueError):
            SeGraMSystemConfig(frequency_ghz=0)


class TestBitAlignCycleModel:
    def test_window_cycle_anchors(self):
        """Section 11.3: 169 cycles at W=64, 272 cycles at W=128."""
        model = BitAlignCycleModel()
        assert model.cycles_per_window(64) == 169
        assert model.cycles_per_window(128) == 272

    def test_window_count_anchors(self):
        """Section 11.3: 250 windows (GenASM) vs 125 (BitAlign) for a
        10 kbp read."""
        bitalign = BitAlignCycleModel(BitAlignUnitConfig())
        genasm = BitAlignCycleModel(BitAlignUnitConfig.genasm())
        assert bitalign.window_count(10_000) == 125
        assert genasm.window_count(10_000) == 250

    def test_per_read_cycle_anchors(self):
        """Section 11.3: 34.0 k vs 42.3 k cycles per 10 kbp read."""
        bitalign = BitAlignCycleModel(BitAlignUnitConfig())
        genasm = BitAlignCycleModel(BitAlignUnitConfig.genasm())
        assert bitalign.alignment_cycles(10_000) == 34_000
        assert genasm.alignment_cycles(10_000) == 42_250  # "42.3 k"

    def test_speedup_vs_genasm(self):
        """Section 11.3: BitAlign beats GenASM by 24 % (1.2x)."""
        bitalign = BitAlignCycleModel(BitAlignUnitConfig())
        genasm = BitAlignCycleModel(BitAlignUnitConfig.genasm())
        speedup = bitalign.speedup_vs(genasm, 10_000)
        assert speedup == pytest.approx(1.24, abs=0.01)

    def test_short_read_single_window(self):
        model = BitAlignCycleModel()
        assert model.window_count(100) == 1
        assert model.alignment_cycles(100) == 272

    def test_scratchpad_traffic(self):
        # Section 8.2: 16 B written per PE per cycle.
        model = BitAlignCycleModel()
        assert model.scratchpad_write_bytes_per_cycle() == 64 * 16

    def test_footprint_saving(self):
        assert BitAlignCycleModel().memory_footprint_saving_vs_genasm() \
            == 3.0

    def test_validation(self):
        model = BitAlignCycleModel()
        with pytest.raises(ValueError):
            model.window_count(0)
        with pytest.raises(ValueError):
            model.cycles_per_window(1)
        with pytest.raises(ValueError):
            model.bitvectors_stored_per_window(-1)


class TestHbm:
    def test_channel_timing_monotone(self):
        channel = HbmChannelModel()
        assert channel.random_access_ns(8) < channel.random_access_ns(512)
        assert channel.stream_ns(1_000) < channel.stream_ns(100_000)

    def test_random_access_includes_latency(self):
        channel = HbmChannelModel()
        assert channel.random_access_ns(8) >= \
            channel.random_access_latency_ns

    def test_paper_content_fits_one_stack(self):
        """Section 8.3: 11.2 GB of graph+index per stack, within
        16 GB HBM2E capacity."""
        stack = HbmStackModel()
        paper_bytes = int(11.2 * (1 << 30))
        assert stack.fits(paper_bytes)
        assert 0.5 < stack.utilization(paper_bytes) < 1.0

    def test_stack_bandwidth(self):
        stack = HbmStackModel()
        assert stack.stack_bandwidth_gb_per_s == \
            pytest.approx(8 * 57.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            HbmChannelModel(bandwidth_gb_per_s=0)
        with pytest.raises(ValueError):
            HbmChannelModel().random_access_ns(-1)


class TestMinSeedCycleModel:
    def test_extraction_is_linear(self):
        model = MinSeedCycleModel()
        assert model.minimizer_extraction_cycles(10_000) == 10_000

    def test_lookup_costs_scale(self):
        model = MinSeedCycleModel()
        assert model.frequency_lookup_cycles(100) == \
            pytest.approx(10 * model.frequency_lookup_cycles(10))
        assert model.seed_fetch_cycles(0, 0) == 0.0

    def test_seeding_hidden_under_alignment_for_long_reads(self):
        """Section 8.3/11.2: the pipeline hides MinSeed latency."""
        minseed = MinSeedCycleModel()
        bitalign = BitAlignCycleModel()
        minimizers = int(expected_minimizer_count(10_000, w=10))
        front = minseed.seeding_cycles(10_000, minimizers, minimizers,
                                       3_500)
        align_phase = 3_500 * bitalign.alignment_cycles(10_000)
        assert front < align_phase

    def test_expected_minimizer_density(self):
        assert expected_minimizer_count(11_000, w=10) == \
            pytest.approx(2_000)

    def test_minimizer_batching(self):
        """Section 8.3: a 10 kbp read's ~1.8 k expected minimizers fit
        one 2,050-entry batch; pathological reads need more."""
        model = MinSeedCycleModel()
        expected = int(expected_minimizer_count(10_000, w=10))
        assert model.minimizer_batches(expected) == 1
        assert model.minimizer_batches(2_050) == 1
        assert model.minimizer_batches(2_051) == 2
        assert model.minimizer_batches(0) == 1

    def test_seed_batching(self):
        model = MinSeedCycleModel()
        assert model.seed_batches(242) == 1
        assert model.seed_batches(243) == 2

    def test_validation(self):
        model = MinSeedCycleModel()
        with pytest.raises(ValueError):
            model.minimizer_extraction_cycles(0)
        with pytest.raises(ValueError):
            model.minimizer_batches(-1)
        with pytest.raises(ValueError):
            model.seed_batches(-1)


class TestPerformanceModel:
    def test_seed_task_latency_anchors(self):
        """Section 11.2: one execution takes 35.9 us at 5 % error and
        37.5 us at 10 %."""
        model = SeGraMPerformanceModel()
        assert model.seed_task_latency_us(10_000, 0.05) == \
            pytest.approx(35.9, abs=0.05)
        assert model.seed_task_latency_us(10_000, 0.10) == \
            pytest.approx(37.5, abs=0.05)

    def test_long_read_throughput_scale(self):
        model = SeGraMPerformanceModel()
        rps = model.reads_per_second(WorkloadProfile.pacbio(0.05))
        # 32 accel x 1 GHz / (3500 seeds x 35.9 k cycles) ~ 255 r/s.
        assert rps == pytest.approx(254.7, rel=0.02)

    def test_error_rate_changes_latency_not_throughput_much(self):
        """Section 11.2: throughput barely differs between 5 % and
        10 % datasets (same seed statistics)."""
        model = SeGraMPerformanceModel()
        fast = model.reads_per_second(WorkloadProfile.pacbio(0.05))
        slow = model.reads_per_second(WorkloadProfile.ont(0.10))
        assert 1.0 < fast / slow < 1.10

    def test_short_reads_much_faster(self):
        model = SeGraMPerformanceModel()
        short = model.reads_per_second(WorkloadProfile.illumina(150))
        long = model.reads_per_second(WorkloadProfile.pacbio(0.05))
        assert short / long > 1_000

    def test_throughput_decreases_with_read_length(self):
        """Fig. 16 trend: longer short-reads -> more seeds+windows ->
        lower throughput."""
        model = SeGraMPerformanceModel()
        r100 = model.reads_per_second(WorkloadProfile.illumina(100))
        r150 = model.reads_per_second(WorkloadProfile.illumina(150))
        r250 = model.reads_per_second(WorkloadProfile.illumina(250))
        assert r100 > r150 > r250

    def test_throughput_scales_with_accelerators(self):
        small = SeGraMPerformanceModel(SeGraMSystemConfig(stacks=1))
        full = SeGraMPerformanceModel(SeGraMSystemConfig(stacks=4))
        wl = WorkloadProfile.pacbio()
        assert full.reads_per_second(wl) == \
            pytest.approx(4 * small.reads_per_second(wl))

    def test_dataset_runtime(self):
        model = SeGraMPerformanceModel()
        wl = WorkloadProfile.pacbio(0.05)
        assert model.dataset_runtime_s(wl) == \
            pytest.approx(10_000 / model.reads_per_second(wl))

    def test_bandwidth_per_read_is_low(self):
        """Section 11.2: per-read bandwidth demand stays in the
        single-digit GB/s range, so read-level parallelism scales."""
        model = SeGraMPerformanceModel()
        bw = model.bandwidth_per_read_gb_s(WorkloadProfile.pacbio())
        assert 0.0 < bw < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeGraMPerformanceModel().overhead_cycles(1.5)


class TestAreaPower:
    def test_table1_accelerator_totals(self):
        """Table 1: 0.867 mm2 and 758 mW per accelerator."""
        model = AreaPowerModel()
        assert model.accelerator_area_mm2 == pytest.approx(0.867,
                                                           abs=1e-6)
        assert model.accelerator_power_mw == pytest.approx(758.0,
                                                           abs=1e-6)

    def test_table1_system_totals(self):
        """Table 1: 27.7 mm2, 24.3 W for 32 accelerators, 28.1 W with
        HBM."""
        model = AreaPowerModel()
        assert model.system_area_mm2 == pytest.approx(27.7, abs=0.05)
        assert model.system_power_w == pytest.approx(24.3, abs=0.05)
        assert model.system_power_with_hbm_w == pytest.approx(28.1,
                                                              abs=0.1)

    def test_hop_queues_dominate_edit_logic(self):
        """Section 11.1: hop queues are >60 % of the edit-distance
        logic's area and power."""
        area_share, power_share = \
            AreaPowerModel().hop_queue_share_of_edit_logic()
        assert area_share > 0.60
        assert power_share > 0.60

    def test_ablation_scaling(self):
        """Halving the hop-queue depth must shrink area and power."""
        small_queues = SeGraMSystemConfig(
            bitalign=BitAlignUnitConfig(hop_queue_bytes_per_pe=96),
        )
        base = AreaPowerModel()
        ablated = AreaPowerModel(small_queues)
        assert ablated.accelerator_area_mm2 < base.accelerator_area_mm2
        assert ablated.accelerator_power_mw < base.accelerator_power_mw

    def test_table1_rows_shape(self):
        rows = AreaPowerModel().table1_rows()
        assert any("hop queue" in r["block"] for r in rows)
        assert rows[-1]["block"] == "Total + HBM"


class TestBaselines:
    def test_power_cross_check(self):
        """CPU power / published reduction lands at SeGraM's ~28 W
        system power — two independent routes to the same number."""
        model = AreaPowerModel()
        for key in baselines.SEGRAM_POWER_REDUCTION:
            implied = baselines.derived_segram_power_w(*key)
            assert implied == pytest.approx(
                model.system_power_with_hbm_w, rel=0.05,
            )

    def test_derived_throughputs_ordered(self):
        segram = 254.7
        graphaligner = baselines.derived_baseline_throughput(
            segram, "GraphAligner", "long")
        vg = baselines.derived_baseline_throughput(segram, "vg", "long")
        assert graphaligner < vg < segram

    def test_seed_count_tables(self):
        assert baselines.SEED_COUNTS_LONG["MinSeed kept"] == 35_000_000
        assert baselines.SEED_COUNTS_SHORT["GraphAligner extended"] \
            == 11_000
