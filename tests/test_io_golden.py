"""Golden-file tests for the SAM and GAF writers.

A small deterministic read set is mapped with a pinned configuration
and the emitted SAM/GAF is compared **byte-for-byte** against files
checked in under ``tests/golden/``.  Any refactor of the pipeline, the
alignment backends, or the writers that silently changes output
formatting (or mapping results) fails here first.

Regenerate after an *intentional* output change with::

    PYTHONPATH=src python tests/test_io_golden.py --regenerate

and review the golden diff like any other code change.
"""

from __future__ import annotations

import io
import random
from pathlib import Path

import pytest

from repro import seq as seqmod
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.windows import WindowingConfig
from repro.io.gaf import (
    read_gaf,
    result_to_gaf,
    validate_gaf_record,
    write_gaf,
)
from repro.io.sam import (
    read_sam,
    result_to_sam,
    validate_sam_record,
    write_sam,
)
from repro.sim.reference import random_reference

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SAM = GOLDEN_DIR / "expected.sam"
GOLDEN_GAF = GOLDEN_DIR / "expected.gaf"

REFERENCE_NAME = "chr_golden"


def _workload() -> tuple[str, list[tuple[str, str]]]:
    """The pinned reference and read set (fully deterministic)."""
    rng = random.Random(0x601D)
    reference = random_reference(3_000, rng)
    exact = reference[500:740]
    # One substitution, one deletion, one insertion — hand-placed so
    # the expected CIGAR features every operation.
    edited = list(reference[1_200:1_440])
    edited[40] = "A" if edited[40] != "A" else "C"
    del edited[120]
    edited.insert(200, "G")
    reverse = seqmod.reverse_complement(reference[2_100:2_340])
    unmapped = "".join(rng.choice("ACGT") for _ in range(240))
    return reference, [
        ("read_exact", exact),
        ("read_edited", "".join(edited)),
        ("read_reverse", reverse),
        ("read_unmapped", unmapped),
    ]


def _mapper(reference: str) -> SeGraM:
    config = SeGraMConfig(
        w=10, k=15, bucket_bits=12, error_rate=0.10,
        windowing=WindowingConfig(window_size=128, overlap=48, k=16),
        max_seeds_per_read=4, both_strands=True,
    )
    return SeGraM.from_reference(reference, config=config,
                                 name=REFERENCE_NAME,
                                 max_node_length=1_024)


def _render() -> tuple[str, str]:
    """Map the pinned workload and render SAM + GAF as strings."""
    reference, reads = _workload()
    mapper = _mapper(reference)
    results = [(mapper.map_read(sequence, name), sequence)
               for name, sequence in reads]
    sam_buffer = io.StringIO()
    write_sam(sam_buffer,
              [result_to_sam(result, sequence, REFERENCE_NAME)
               for result, sequence in results],
              REFERENCE_NAME, len(reference))
    gaf_buffer = io.StringIO()
    gaf_records = [result_to_gaf(result, mapper.graph, sequence)
                   for result, sequence in results]
    write_gaf(gaf_buffer, [r for r in gaf_records if r is not None])
    return sam_buffer.getvalue(), gaf_buffer.getvalue()


@pytest.fixture(scope="module")
def rendered() -> tuple[str, str]:
    return _render()


class TestGoldenOutput:
    def test_sam_matches_golden_bytes(self, rendered):
        sam_text, _ = rendered
        assert GOLDEN_SAM.exists(), \
            "golden SAM missing; run this module with --regenerate"
        assert sam_text.encode("ascii") == GOLDEN_SAM.read_bytes()

    def test_gaf_matches_golden_bytes(self, rendered):
        _, gaf_text = rendered
        assert GOLDEN_GAF.exists(), \
            "golden GAF missing; run this module with --regenerate"
        assert gaf_text.encode("ascii") == GOLDEN_GAF.read_bytes()

    def test_workload_covers_the_format(self, rendered):
        """The fixture must keep exercising every format feature."""
        sam_text, gaf_text = rendered
        records = read_sam(io.StringIO(sam_text))
        assert [r.qname for r in records] == [
            "read_exact", "read_edited", "read_reverse",
            "read_unmapped",
        ]
        by_name = {r.qname: r for r in records}
        assert by_name["read_exact"].cigar == "240="
        assert not by_name["read_exact"].is_reverse
        assert by_name["read_edited"].edit_distance == 3
        for op in "=XID":
            assert op in by_name["read_edited"].cigar
        assert by_name["read_reverse"].is_reverse
        assert by_name["read_unmapped"].is_unmapped
        assert len(read_gaf(io.StringIO(gaf_text))) == 3  # mapped only

    def test_reverse_strand_seq_is_reverse_complement(self, rendered):
        """SAM spec: FLAG 0x10 stores SEQ reverse-complemented.

        The golden read_reverse input is the reverse complement of a
        reference slice, so its stored SEQ must be byte-for-byte the
        reverse complement of the input read — i.e. the reference
        slice itself (the regression the PR 3 bugfix pins)."""
        sam_text, _ = rendered
        _, reads = _workload()
        read_of = dict(reads)
        records = {r.qname: r for r in read_sam(io.StringIO(sam_text))}
        record = records["read_reverse"]
        assert record.seq == \
            seqmod.reverse_complement(read_of["read_reverse"])
        # Forward-strand records keep the read as sequenced.
        assert records["read_exact"].seq == read_of["read_exact"]

    def test_golden_records_validate(self, rendered):
        sam_text, gaf_text = rendered
        for record in read_sam(io.StringIO(sam_text)):
            validate_sam_record(record)
        reference, _ = _workload()
        graph = _mapper(reference).graph
        for record in read_gaf(io.StringIO(gaf_text)):
            validate_gaf_record(record, graph)

    def test_backends_agree_with_golden(self, rendered):
        """Both alignment backends reproduce the golden bytes."""
        import repro.align.backends as backends_module

        sam_text, gaf_text = rendered
        reference, reads = _workload()
        config = SeGraMConfig(
            w=10, k=15, bucket_bits=12, error_rate=0.10,
            windowing=WindowingConfig(window_size=128, overlap=48,
                                      k=16),
            max_seeds_per_read=4, both_strands=True,
            align_backend="numpy",
        )
        mapper = SeGraM.from_reference(reference, config=config,
                                       name=REFERENCE_NAME,
                                       max_node_length=1_024)
        assert isinstance(mapper.aligner.backend,
                          backends_module.NumpyBackend)
        results = [(mapper.map_read(sequence, name), sequence)
                   for name, sequence in reads]
        buffer = io.StringIO()
        write_sam(buffer,
                  [result_to_sam(result, sequence, REFERENCE_NAME)
                   for result, sequence in results],
                  REFERENCE_NAME, len(reference))
        assert buffer.getvalue() == sam_text
        buffer = io.StringIO()
        write_gaf(buffer,
                  [record for record in
                   (result_to_gaf(result, mapper.graph, sequence)
                    for result, sequence in results)
                   if record is not None])
        assert buffer.getvalue() == gaf_text


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    sam_text, gaf_text = _render()
    GOLDEN_SAM.write_bytes(sam_text.encode("ascii"))
    GOLDEN_GAF.write_bytes(gaf_text.encode("ascii"))
    print(f"wrote {GOLDEN_SAM} ({len(sam_text)} bytes) and "
          f"{GOLDEN_GAF} ({len(gaf_text)} bytes)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        raise SystemExit("usage: test_io_golden.py --regenerate")
