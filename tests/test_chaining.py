"""Tests for the optional colinear-chaining filter."""

from __future__ import annotations

import random

import pytest

from repro.core.chaining import Chain, chain_seeds, chains_to_regions
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.minseed import Seed
from repro.core.windows import WindowingConfig
from repro.sim.reference import random_reference


def make_seed(read_start: int, graph_start: int, k: int = 15,
              node: int = 0) -> Seed:
    return Seed(
        read_start=read_start, read_end=read_start + k - 1,
        node_id=node, node_offset=graph_start,
        graph_start=graph_start, graph_end=graph_start + k - 1,
        minimizer_hash=read_start * 1_000 + graph_start,
    )


class TestChainSeeds:
    def test_colinear_seeds_chain_together(self):
        seeds = [make_seed(0, 100), make_seed(40, 140),
                 make_seed(80, 180)]
        chains = chain_seeds(seeds)
        assert len(chains) == 1
        assert len(chains[0].seeds) == 3

    def test_off_diagonal_seed_excluded(self):
        # Third seed is colinear in read but 4 kb away in the graph.
        seeds = [make_seed(0, 100), make_seed(40, 140),
                 make_seed(80, 4_500)]
        chains = chain_seeds(seeds, max_gap=1_000)
        best = chains[0]
        assert len(best.seeds) == 2

    def test_two_loci_two_chains(self):
        locus_a = [make_seed(0, 100), make_seed(40, 140)]
        locus_b = [make_seed(0, 50_000), make_seed(40, 50_040)]
        chains = chain_seeds(locus_a + locus_b, max_gap=1_000)
        assert len(chains) == 2
        assert all(len(c.seeds) == 2 for c in chains)

    def test_read_order_respected(self):
        # Second seed earlier in the read than the first: not
        # chainable.
        seeds = [make_seed(50, 100), make_seed(0, 200)]
        chains = chain_seeds(seeds)
        assert all(len(c.seeds) == 1 for c in chains)

    def test_skew_bound(self):
        # Graph gap 500 vs read gap 40: far beyond 30 % skew.
        seeds = [make_seed(0, 100), make_seed(55, 615)]
        chains = chain_seeds(seeds, max_skew=0.3)
        assert all(len(c.seeds) == 1 for c in chains)

    def test_indel_tolerance_within_skew(self):
        # Graph gap 110 vs read gap 100: a 10-base indel, within 30 %.
        seeds = [make_seed(0, 100), make_seed(115, 225)]
        chains = chain_seeds(seeds, max_skew=0.3)
        assert len(chains[0].seeds) == 2

    def test_empty_input(self):
        assert chain_seeds([]) == []

    def test_every_seed_claimed_once(self):
        rng = random.Random(3)
        seeds = [make_seed(rng.randrange(500),
                           rng.randrange(10_000)) for _ in range(50)]
        chains = chain_seeds(seeds)
        counted = sum(len(c.seeds) for c in chains)
        assert counted == len(seeds)

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_seeds([], max_gap=0)
        with pytest.raises(ValueError):
            chain_seeds([], max_skew=2.0)


class TestChainsToRegions:
    def test_region_spans_chain_with_extension(self):
        seeds = (make_seed(10, 1_000), make_seed(60, 1_050))
        chain = Chain(seeds=seeds, score=30.0)
        regions = chains_to_regions([chain], read_length=100,
                                    error_rate=0.1,
                                    total_chars=100_000)
        assert len(regions) == 1
        region = regions[0]
        assert region.start <= 1_000 - 10
        assert region.end >= 1_050 + 14 + (100 - 60 - 15)

    def test_top_n_limits_regions(self):
        chains = [
            Chain(seeds=(make_seed(0, i * 1_000),), score=15.0 - i)
            for i in range(5)
        ]
        regions = chains_to_regions(chains, 50, 0.05, 100_000, top_n=2)
        assert len(regions) == 2


class TestMapperIntegration:
    def test_chaining_reduces_alignments_same_result(self):
        rng = random.Random(8)
        reference = random_reference(60_000, rng)
        base = dict(
            w=10, k=15, bucket_bits=12, error_rate=0.02,
            windowing=WindowingConfig(window_size=128, overlap=48,
                                      k=16),
        )
        plain = SeGraM.from_reference(
            reference, config=SeGraMConfig(**base),
            max_node_length=4_000)
        chained = SeGraM.from_reference(
            reference, config=SeGraMConfig(**base, chaining=True),
            max_node_length=4_000)
        read = reference[20_000:21_000]
        plain_result = plain.map_read(read, "r")
        chained_result = chained.map_read(read, "r")
        assert chained_result.mapped and plain_result.mapped
        assert chained_result.distance == plain_result.distance == 0
        # Chaining collapses the per-seed regions into one chain
        # region (the 77 M -> 48 k effect of Section 11.4, in
        # miniature).
        assert chained_result.regions_aligned < \
            plain_result.regions_aligned
