"""Randomized parity harness for the alignment-backend registry.

Every pair of registered backends must be bit-for-bit interchangeable:
identical ``(distance, start)`` from ``distance()``, identical
``(distance, start, cigar)`` from ``align()``, and every reported
CIGAR must replay exactly against the consumed text span.  On top of
the pairwise checks, each backend is validated against two
*independent* oracles — the classic 1-active left-to-right Bitap
(:mod:`repro.align.bitap`) for the distance and the exact DP fitting
aligner (:mod:`repro.align.dp_linear`) for optimality — so a bug
shared by both bitvector implementations cannot hide.

The case generator is seeded and covers the edge cases the recurrence
is most likely to get wrong: ``k = 0``, patterns longer than the text,
all-``N`` reads, characters absent from the pattern, empty text, and
near-boundary word widths (63/64/65 pattern bits).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.align.backends import (
    AlignmentBackend,
    BackendAlignment,
    default_backend_name,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.align.bitalign_packed import (
    WORD_BITS,
    PackedLayout,
    pack_int,
    unpack_words,
    words_for,
)
from repro.align.bitap import (
    ABSENT_CHAR_MASK,
    bitap_distance,
    pattern_masks_1active,
)
from repro.align.dp_linear import AlignmentSizeError, semiglobal_distance
from repro.align.genasm import genasm_distance
from repro.core.alignment import replay_alignment
from repro.core.bitalign import bitalign, generate_bitvectors
from repro.graph.genome_graph import GenomeGraph
from repro.graph.linearize import linearize

#: Randomized cases per backend pair (the ISSUE's acceptance floor).
CASE_COUNT = 200

BACKEND_PAIRS = list(itertools.combinations(sorted(list_backends()), 2))


def _random_case(rng: random.Random) -> tuple[str, str, int]:
    """One (text, pattern, k) case, biased toward alignable inputs."""
    shape = rng.random()
    if shape < 0.08:
        # Empty-ish window.
        text = "".join(rng.choice("ACGT")
                       for _ in range(rng.randrange(0, 3)))
        pattern = "".join(rng.choice("ACGT")
                          for _ in range(rng.randrange(1, 8)))
    elif shape < 0.16:
        # Pattern longer than the text.
        n = rng.randrange(1, 30)
        text = "".join(rng.choice("ACGT") for _ in range(n))
        pattern = "".join(
            rng.choice("ACGT") for _ in range(n + rng.randrange(1, 20)))
    elif shape < 0.24:
        # All-N reads (and sometimes N-bearing text).
        n = rng.randrange(0, 60)
        alphabet = "ACGTN" if rng.random() < 0.5 else "ACGT"
        text = "".join(rng.choice(alphabet) for _ in range(n))
        pattern = "N" * rng.randrange(1, 12)
    elif shape < 0.36:
        # Word-boundary pattern widths (63..66 bits).
        m = rng.choice((63, 64, 65, 66))
        n = rng.randrange(0, 2 * m)
        text = "".join(rng.choice("ACGT") for _ in range(n))
        pattern = "".join(rng.choice("ACGT") for _ in range(m))
    else:
        # A mutated substring of the text: usually alignable.
        n = rng.randrange(10, 220)
        text = "".join(rng.choice("ACGTN" if rng.random() < 0.15
                                  else "ACGT") for _ in range(n))
        m = rng.randrange(1, min(48, n))
        start = rng.randrange(0, n - m + 1)
        pattern = "".join(
            rng.choice("ACGT") if rng.random() < 0.12 else char
            for char in text[start:start + m])
        if not pattern:  # pragma: no cover - m >= 1 guarantees content
            pattern = "A"
    k = 0 if rng.random() < 0.15 else rng.randrange(0, 14)
    return text, pattern, k


def _cases() -> list[tuple[str, str, int]]:
    rng = random.Random(0x5E62A)
    return [_random_case(rng) for _ in range(CASE_COUNT)]


CASES = _cases()


@pytest.mark.parametrize("left_name,right_name", BACKEND_PAIRS)
class TestPairwiseParity:
    """Bit-for-bit interchangeability of every registered pair."""

    def test_distance_and_alignment_parity(self, left_name, right_name):
        left = get_backend(left_name)
        right = get_backend(right_name)
        alignable = 0
        for text, pattern, k in CASES:
            context = f"text={text!r} pattern={pattern!r} k={k}"
            dl = left.distance(text, pattern, k)
            dr = right.distance(text, pattern, k)
            assert dl == dr, f"distance diverged: {context}"
            al = left.align(text, pattern, k)
            ar = right.align(text, pattern, k)
            assert (al is None) == (ar is None), context
            if al is None:
                assert dl is None, context
                continue
            alignable += 1
            assert (al.distance, al.start) == (ar.distance, ar.start), \
                context
            assert al.cigar == ar.cigar, f"CIGAR diverged: {context}"
            assert dl is not None and al.distance == dl[0], context
        # The generator must actually exercise the aligners.
        assert alignable > CASE_COUNT // 2

    def test_cigars_replay_exactly(self, left_name, right_name):
        for name in (left_name, right_name):
            backend = get_backend(name)
            for text, pattern, k in CASES:
                result = backend.align(text, pattern, k)
                if result is None:
                    continue
                consumed = result.cigar.ref_consumed
                if result.start < 0:
                    assert consumed == 0
                    span = ""
                else:
                    span = text[result.start:result.start + consumed]
                edits = replay_alignment(result.cigar, pattern, span)
                assert edits == result.distance


class TestOracleParity:
    """Backends against the independent Bitap and DP oracles."""

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_against_bitap_and_dp(self, name):
        backend = get_backend(name)
        for text, pattern, k in CASES:
            context = f"text={text!r} pattern={pattern!r} k={k}"
            located = backend.distance(text, pattern, k)
            oracle = bitap_distance(text, pattern, k)
            if located is None:
                assert oracle is None, context
            else:
                assert oracle == located[0], context
            if text:
                exact = semiglobal_distance(text, pattern)[0]
                if exact <= k:
                    assert located is not None and located[0] == exact, \
                        context
                else:
                    assert located is None, context

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_matches_linear_genasm(self, name):
        """The distance contract is genasm_distance, tie-breaks
        included (smallest distance, then leftmost start)."""
        backend = get_backend(name)
        for text, pattern, k in CASES:
            assert backend.distance(text, pattern, k) == \
                genasm_distance(text, pattern, k), \
                f"text={text!r} pattern={pattern!r} k={k}"


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_exact_occurrence_at_k0(self, name):
        backend = get_backend(name)
        text = "ACGTACGTTGCA"
        located = backend.distance(text, "GTAC", 0)
        assert located == (0, text.index("GTAC"))
        result = backend.align(text, "GTAC", 0)
        assert (result.distance, result.start) == (0, 2)
        assert str(result.cigar) == "4="

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_empty_text_pure_insertion(self, name):
        backend = get_backend(name)
        assert backend.distance("", "ACG", 2) is None
        located = backend.distance("", "ACG", 3)
        assert located == (3, 0)
        result = backend.align("", "ACG", 3)
        assert (result.distance, result.start) == (3, -1)
        assert str(result.cigar) == "3I"

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_pattern_longer_than_text(self, name):
        backend = get_backend(name)
        # 6-char pattern over 2 chars of text: at least 4 insertions.
        assert backend.distance("AC", "ACACAC", 3) is None
        located = backend.distance("AC", "ACACAC", 4)
        assert located is not None and located[0] == 4

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_all_n_read_against_acgt_text(self, name):
        """N is a literal: it mismatches ACGT but matches N."""
        backend = get_backend(name)
        assert backend.distance("ACGTACGT", "NNN", 2) is None
        located = backend.distance("ACGTACGT", "NNN", 3)
        assert located is not None and located[0] == 3
        assert backend.distance("AANNNAA", "NNN", 0) == (0, 2)

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_rejects_empty_pattern_and_negative_k(self, name):
        backend = get_backend(name)
        with pytest.raises(ValueError):
            backend.distance("ACGT", "", 1)
        with pytest.raises(ValueError):
            backend.align("ACGT", "AC", -1)

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_align_honors_word_budget(self, name):
        backend = get_backend(name)
        with pytest.raises(AlignmentSizeError):
            backend.align("ACGT" * 300, "ACGT" * 250, 100, max_words=10)


class TestBitapNPolicy:
    """Regression tests for the explicit absent-character policy."""

    def test_absent_char_mask_is_explicit(self):
        masks = pattern_masks_1active("ACCA")
        assert masks == {"A": 0b1001, "C": 0b0110}
        assert masks.get("N", ABSENT_CHAR_MASK) == 0
        assert masks.get("G", ABSENT_CHAR_MASK) == 0

    def test_reads_with_n_cost_an_edit(self):
        # One N in the text forces exactly one substitution.
        assert bitap_distance("ACGNACGT", "GNAC", 0) == 0
        assert bitap_distance("ACGTACGT", "GNAC", 0) is None
        assert bitap_distance("ACGTACGT", "GNAC", 1) == 1

    def test_n_policy_matches_bitalign(self):
        """Bitap and the 0-active side agree on every N-bearing case."""
        rng = random.Random(77)
        for _ in range(80):
            n = rng.randrange(1, 40)
            text = "".join(rng.choice("ACGTN") for _ in range(n))
            m = rng.randrange(1, 12)
            pattern = "".join(rng.choice("ACGTN") for _ in range(m))
            k = rng.randrange(0, 5)
            expected = genasm_distance(text, pattern, k)
            got = bitap_distance(text, pattern, k)
            if expected is None:
                assert got is None, (text, pattern, k)
            else:
                assert got == expected[0], (text, pattern, k)


class TestChainKernelParity:
    """The packed chain kernel inside the graph aligner."""

    @staticmethod
    def _chain(sequence: str):
        return linearize(GenomeGraph.from_linear(sequence,
                                                 node_length=64))

    @staticmethod
    def _forced_numpy():
        """A numpy backend with the crossover gate disabled, so small
        test windows exercise the packed kernel rather than the
        fallback."""
        from repro.align.backends import NumpyBackend

        return NumpyBackend(chain_kernel_min_bits=0)

    def test_chain_window_results_identical(self):
        rng = random.Random(31)
        forced = self._forced_numpy()
        for _ in range(40):
            n = rng.randrange(4, 120)
            text = "".join(rng.choice("ACGT") for _ in range(n))
            m = rng.randrange(2, min(40, n + 1))
            start = rng.randrange(0, n - m + 1)
            pattern = "".join(
                rng.choice("ACGT") if rng.random() < 0.1 else char
                for char in text[start:start + m])
            k = rng.randrange(1, 8)
            lin = self._chain(text)
            anchors = None
            if rng.random() < 0.5:
                anchors = [start]
            ref = bitalign(lin, pattern, k, anchors=anchors,
                           backend="python")
            fast = bitalign(lin, pattern, k, anchors=anchors,
                            backend=forced)
            assert (ref is None) == (fast is None), (text, pattern, k)
            if ref is not None:
                assert (ref.distance, ref.cigar, ref.path,
                        ref.reference) == \
                    (fast.distance, fast.cigar, fast.path,
                     fast.reference), (text, pattern, k, anchors)

    def test_chain_rows_match_reference_band(self):
        """Packed rows agree with generate_bitvectors on every bit a
        consumer can observe (the relevance band)."""
        text, pattern, k = "ACGTAGGCTTACGA", "TAGGCTT", 3
        lin = self._chain(text)
        reference = generate_bitvectors(lin, pattern, k)
        packed = self._forced_numpy().chain_bitvectors(text, pattern, k)
        assert len(packed) == len(reference)
        m = len(pattern)
        full = (1 << m) - 1
        for i in range(len(reference)):
            for d in range(k + 1):
                floor = max(0, m - 1 - i - (k - d))
                band = full & ~((1 << floor) - 1)
                assert reference[i][d] & band == packed[i][d] & band

    def test_windowed_aligner_parity_with_forced_kernel(self):
        """A multi-window chain alignment driven entirely through the
        packed kernel matches the python backend exactly."""
        from repro.core.windows import WindowedAligner, WindowingConfig

        rng = random.Random(91)
        text = "".join(rng.choice("ACGT") for _ in range(600))
        read = "".join(
            rng.choice("ACGT") if rng.random() < 0.04 else char
            for char in text[80:480])
        lin = self._chain(text)
        config = WindowingConfig(window_size=128, overlap=48, k=16)
        reference = WindowedAligner(config, backend="python").align(
            lin, read, anchor=(100, 20))
        forced = WindowedAligner(
            config, backend=self._forced_numpy()).align(
            lin, read, anchor=(100, 20))
        assert (reference.distance, reference.cigar, reference.path,
                reference.windows, reference.rescues) == \
            (forced.distance, forced.cigar, forced.path,
             forced.windows, forced.rescues)

    def test_registry_kernel_defers_below_crossover(self):
        """The registered numpy backend opts out of windows narrower
        than its measured crossover — the fallback recurrence is
        faster there and results are identical either way."""
        from repro.align.backends import NumpyBackend

        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.chain_bitvectors("ACGT" * 16, "ACGTAC", 2) is None
        wide = "ACGT" * ((backend.chain_kernel_min_bits + 3) // 4)
        assert backend.chain_bitvectors(wide + "ACGT", wide, 2) \
            is not None

    def test_kernel_falls_back_on_budget_blowout(self, monkeypatch):
        """A window too large for the packed word budget must fall
        back (return None), never raise — backend interchangeability
        includes inputs only the python path can afford."""
        from repro.align import backends as backends_module

        def exploding(*args, **kwargs):
            raise AlignmentSizeError("forced blowout")

        monkeypatch.setattr(backends_module, "packed_chain_rows",
                            exploding)
        forced = self._forced_numpy()
        assert forced.chain_bitvectors("ACGT" * 200,
                                       "ACGT" * 160, 2) is None


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"python", "numpy"} <= set(list_backends())

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="unknown alignment backend"):
            get_backend("fpga")

    def test_resolve_accepts_instance_name_and_none(self):
        numpy_backend = get_backend("numpy")
        assert resolve_backend(numpy_backend) is numpy_backend
        assert resolve_backend("numpy") is numpy_backend
        assert resolve_backend(None).name == default_backend_name()

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ALIGN_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_ALIGN_BACKEND", "quantum")
        with pytest.raises(ValueError, match="unknown alignment"):
            default_backend_name()
        monkeypatch.delenv("REPRO_ALIGN_BACKEND")
        assert default_backend_name() == "python"

    def test_register_backend_rejects_anonymous(self):
        with pytest.raises(ValueError):
            register_backend(AlignmentBackend())

    def test_register_replaces_and_restores(self):
        class Stub(AlignmentBackend):
            name = "stub-backend"

            def distance(self, text, pattern, k):
                return (0, 0)

            def align(self, text, pattern, k, max_words=0):
                return BackendAlignment(0, None, 0)

        try:
            register_backend(Stub())
            assert "stub-backend" in list_backends()
            assert get_backend("stub-backend").distance("A", "A", 0) \
                == (0, 0)
        finally:
            from repro.align import backends as backends_module

            backends_module._REGISTRY.pop("stub-backend", None)
        assert "stub-backend" not in list_backends()


class TestPackedLayout:
    def test_words_and_padding(self):
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        layout = PackedLayout(128)
        assert (layout.words, layout.bytes_per_bitvector,
                layout.padded_bits) == (2, 16, 128)
        layout = PackedLayout(100)
        assert (layout.words, layout.bytes_per_bitvector,
                layout.padded_bits) == (2, 16, 128)
        with pytest.raises(ValueError):
            PackedLayout(0)

    def test_pack_roundtrip(self):
        value = (1 << 130) - 12345
        words = pack_int(value, words_for(131))
        assert words.dtype == "uint64"
        assert unpack_words(words) == value

    def test_cycle_model_reads_packed_layout(self):
        from repro.hw.bitalign_unit import BitAlignCycleModel

        model = BitAlignCycleModel()
        layout = model.packed_layout()
        assert layout.pattern_bits == model.config.bits_per_pe
        assert layout.words == words_for(model.config.bits_per_pe)
        assert model.scratchpad_write_bytes_per_cycle() == \
            layout.bytes_per_bitvector * model.config.pe_count
        # An odd window width is charged for its padded words.
        assert model.packed_layout(100).bytes_per_bitvector == 16

    def test_word_bits_constant(self):
        assert WORD_BITS == 64
