"""Randomized parity harness for the alignment-backend registry.

Every pair of registered backends must be bit-for-bit interchangeable:
identical ``(distance, start)`` from ``distance()``, identical
``(distance, start, cigar)`` from ``align()``, and every reported
CIGAR must replay exactly against the consumed text span.  On top of
the pairwise checks, each backend is validated against two
*independent* oracles — the classic 1-active left-to-right Bitap
(:mod:`repro.align.bitap`) for the distance and the exact DP fitting
aligner (:mod:`repro.align.dp_linear`) for optimality — so a bug
shared by both bitvector implementations cannot hide.

The case generator is seeded and covers the edge cases the recurrence
is most likely to get wrong: ``k = 0``, patterns longer than the text,
all-``N`` reads, characters absent from the pattern, empty text, and
near-boundary word widths (63/64/65 pattern bits).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.align.backends import (
    AlignmentBackend,
    BackendAlignment,
    default_backend_name,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.align.bitalign_packed import (
    WORD_BITS,
    PackedLayout,
    pack_int,
    unpack_words,
    words_for,
)
from repro.align.bitap import (
    ABSENT_CHAR_MASK,
    bitap_distance,
    pattern_masks_1active,
)
from repro.align.dp_linear import AlignmentSizeError, semiglobal_distance
from repro.align.genasm import genasm_distance
from repro.core.alignment import replay_alignment
from repro.core.bitalign import bitalign, generate_bitvectors
from repro.graph.genome_graph import GenomeGraph
from repro.graph.linearize import linearize

#: Randomized cases per backend pair (the ISSUE's acceptance floor).
CASE_COUNT = 200

BACKEND_PAIRS = list(itertools.combinations(sorted(list_backends()), 2))


def _random_case(rng: random.Random) -> tuple[str, str, int]:
    """One (text, pattern, k) case, biased toward alignable inputs."""
    shape = rng.random()
    if shape < 0.08:
        # Empty-ish window.
        text = "".join(rng.choice("ACGT")
                       for _ in range(rng.randrange(0, 3)))
        pattern = "".join(rng.choice("ACGT")
                          for _ in range(rng.randrange(1, 8)))
    elif shape < 0.16:
        # Pattern longer than the text.
        n = rng.randrange(1, 30)
        text = "".join(rng.choice("ACGT") for _ in range(n))
        pattern = "".join(
            rng.choice("ACGT") for _ in range(n + rng.randrange(1, 20)))
    elif shape < 0.24:
        # All-N reads (and sometimes N-bearing text).
        n = rng.randrange(0, 60)
        alphabet = "ACGTN" if rng.random() < 0.5 else "ACGT"
        text = "".join(rng.choice(alphabet) for _ in range(n))
        pattern = "N" * rng.randrange(1, 12)
    elif shape < 0.36:
        # Word-boundary pattern widths (63..66 bits).
        m = rng.choice((63, 64, 65, 66))
        n = rng.randrange(0, 2 * m)
        text = "".join(rng.choice("ACGT") for _ in range(n))
        pattern = "".join(rng.choice("ACGT") for _ in range(m))
    else:
        # A mutated substring of the text: usually alignable.
        n = rng.randrange(10, 220)
        text = "".join(rng.choice("ACGTN" if rng.random() < 0.15
                                  else "ACGT") for _ in range(n))
        m = rng.randrange(1, min(48, n))
        start = rng.randrange(0, n - m + 1)
        pattern = "".join(
            rng.choice("ACGT") if rng.random() < 0.12 else char
            for char in text[start:start + m])
        if not pattern:  # pragma: no cover - m >= 1 guarantees content
            pattern = "A"
    k = 0 if rng.random() < 0.15 else rng.randrange(0, 14)
    return text, pattern, k


def _cases() -> list[tuple[str, str, int]]:
    rng = random.Random(0x5E62A)
    return [_random_case(rng) for _ in range(CASE_COUNT)]


CASES = _cases()


@pytest.mark.parametrize("left_name,right_name", BACKEND_PAIRS)
class TestPairwiseParity:
    """Bit-for-bit interchangeability of every registered pair."""

    def test_distance_and_alignment_parity(self, left_name, right_name):
        left = get_backend(left_name)
        right = get_backend(right_name)
        alignable = 0
        for text, pattern, k in CASES:
            context = f"text={text!r} pattern={pattern!r} k={k}"
            dl = left.distance(text, pattern, k)
            dr = right.distance(text, pattern, k)
            assert dl == dr, f"distance diverged: {context}"
            al = left.align(text, pattern, k)
            ar = right.align(text, pattern, k)
            assert (al is None) == (ar is None), context
            if al is None:
                assert dl is None, context
                continue
            alignable += 1
            assert (al.distance, al.start) == (ar.distance, ar.start), \
                context
            assert al.cigar == ar.cigar, f"CIGAR diverged: {context}"
            assert dl is not None and al.distance == dl[0], context
        # The generator must actually exercise the aligners.
        assert alignable > CASE_COUNT // 2

    def test_cigars_replay_exactly(self, left_name, right_name):
        for name in (left_name, right_name):
            backend = get_backend(name)
            for text, pattern, k in CASES:
                result = backend.align(text, pattern, k)
                if result is None:
                    continue
                consumed = result.cigar.ref_consumed
                if result.start < 0:
                    assert consumed == 0
                    span = ""
                else:
                    span = text[result.start:result.start + consumed]
                edits = replay_alignment(result.cigar, pattern, span)
                assert edits == result.distance


class TestOracleParity:
    """Backends against the independent Bitap and DP oracles."""

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_against_bitap_and_dp(self, name):
        backend = get_backend(name)
        for text, pattern, k in CASES:
            context = f"text={text!r} pattern={pattern!r} k={k}"
            located = backend.distance(text, pattern, k)
            oracle = bitap_distance(text, pattern, k)
            if located is None:
                assert oracle is None, context
            else:
                assert oracle == located[0], context
            if text:
                exact = semiglobal_distance(text, pattern)[0]
                if exact <= k:
                    assert located is not None and located[0] == exact, \
                        context
                else:
                    assert located is None, context

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_matches_linear_genasm(self, name):
        """The distance contract is genasm_distance, tie-breaks
        included (smallest distance, then leftmost start)."""
        backend = get_backend(name)
        for text, pattern, k in CASES:
            assert backend.distance(text, pattern, k) == \
                genasm_distance(text, pattern, k), \
                f"text={text!r} pattern={pattern!r} k={k}"


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_exact_occurrence_at_k0(self, name):
        backend = get_backend(name)
        text = "ACGTACGTTGCA"
        located = backend.distance(text, "GTAC", 0)
        assert located == (0, text.index("GTAC"))
        result = backend.align(text, "GTAC", 0)
        assert (result.distance, result.start) == (0, 2)
        assert str(result.cigar) == "4="

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_empty_text_pure_insertion(self, name):
        backend = get_backend(name)
        assert backend.distance("", "ACG", 2) is None
        located = backend.distance("", "ACG", 3)
        assert located == (3, 0)
        result = backend.align("", "ACG", 3)
        assert (result.distance, result.start) == (3, -1)
        assert str(result.cigar) == "3I"

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_pattern_longer_than_text(self, name):
        backend = get_backend(name)
        # 6-char pattern over 2 chars of text: at least 4 insertions.
        assert backend.distance("AC", "ACACAC", 3) is None
        located = backend.distance("AC", "ACACAC", 4)
        assert located is not None and located[0] == 4

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_all_n_read_against_acgt_text(self, name):
        """N is a literal: it mismatches ACGT but matches N."""
        backend = get_backend(name)
        assert backend.distance("ACGTACGT", "NNN", 2) is None
        located = backend.distance("ACGTACGT", "NNN", 3)
        assert located is not None and located[0] == 3
        assert backend.distance("AANNNAA", "NNN", 0) == (0, 2)

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_rejects_empty_pattern_and_negative_k(self, name):
        backend = get_backend(name)
        with pytest.raises(ValueError):
            backend.distance("ACGT", "", 1)
        with pytest.raises(ValueError):
            backend.align("ACGT", "AC", -1)

    @pytest.mark.parametrize("name", sorted(list_backends()))
    def test_align_honors_word_budget(self, name):
        backend = get_backend(name)
        with pytest.raises(AlignmentSizeError):
            backend.align("ACGT" * 300, "ACGT" * 250, 100, max_words=10)


class TestBitapNPolicy:
    """Regression tests for the explicit absent-character policy."""

    def test_absent_char_mask_is_explicit(self):
        masks = pattern_masks_1active("ACCA")
        assert masks == {"A": 0b1001, "C": 0b0110}
        assert masks.get("N", ABSENT_CHAR_MASK) == 0
        assert masks.get("G", ABSENT_CHAR_MASK) == 0

    def test_reads_with_n_cost_an_edit(self):
        # One N in the text forces exactly one substitution.
        assert bitap_distance("ACGNACGT", "GNAC", 0) == 0
        assert bitap_distance("ACGTACGT", "GNAC", 0) is None
        assert bitap_distance("ACGTACGT", "GNAC", 1) == 1

    def test_n_policy_matches_bitalign(self):
        """Bitap and the 0-active side agree on every N-bearing case."""
        rng = random.Random(77)
        for _ in range(80):
            n = rng.randrange(1, 40)
            text = "".join(rng.choice("ACGTN") for _ in range(n))
            m = rng.randrange(1, 12)
            pattern = "".join(rng.choice("ACGTN") for _ in range(m))
            k = rng.randrange(0, 5)
            expected = genasm_distance(text, pattern, k)
            got = bitap_distance(text, pattern, k)
            if expected is None:
                assert got is None, (text, pattern, k)
            else:
                assert got == expected[0], (text, pattern, k)


class TestChainKernelParity:
    """The packed chain kernel inside the graph aligner."""

    @staticmethod
    def _chain(sequence: str):
        return linearize(GenomeGraph.from_linear(sequence,
                                                 node_length=64))

    @staticmethod
    def _forced_numpy():
        """A numpy backend with the crossover gate disabled, so small
        test windows exercise the packed kernel rather than the
        fallback."""
        from repro.align.backends import NumpyBackend

        return NumpyBackend(chain_kernel_min_bits=0)

    def test_chain_window_results_identical(self):
        rng = random.Random(31)
        forced = self._forced_numpy()
        for _ in range(40):
            n = rng.randrange(4, 120)
            text = "".join(rng.choice("ACGT") for _ in range(n))
            m = rng.randrange(2, min(40, n + 1))
            start = rng.randrange(0, n - m + 1)
            pattern = "".join(
                rng.choice("ACGT") if rng.random() < 0.1 else char
                for char in text[start:start + m])
            k = rng.randrange(1, 8)
            lin = self._chain(text)
            anchors = None
            if rng.random() < 0.5:
                anchors = [start]
            ref = bitalign(lin, pattern, k, anchors=anchors,
                           backend="python")
            fast = bitalign(lin, pattern, k, anchors=anchors,
                            backend=forced)
            assert (ref is None) == (fast is None), (text, pattern, k)
            if ref is not None:
                assert (ref.distance, ref.cigar, ref.path,
                        ref.reference) == \
                    (fast.distance, fast.cigar, fast.path,
                     fast.reference), (text, pattern, k, anchors)

    def test_chain_rows_match_reference_band(self):
        """Packed rows agree with generate_bitvectors on every bit a
        consumer can observe (the relevance band)."""
        text, pattern, k = "ACGTAGGCTTACGA", "TAGGCTT", 3
        lin = self._chain(text)
        reference = generate_bitvectors(lin, pattern, k)
        packed = self._forced_numpy().chain_bitvectors(text, pattern, k)
        assert len(packed) == len(reference)
        m = len(pattern)
        full = (1 << m) - 1
        for i in range(len(reference)):
            for d in range(k + 1):
                floor = max(0, m - 1 - i - (k - d))
                band = full & ~((1 << floor) - 1)
                assert reference[i][d] & band == packed[i][d] & band

    def test_windowed_aligner_parity_with_forced_kernel(self):
        """A multi-window chain alignment driven entirely through the
        packed kernel matches the python backend exactly."""
        from repro.core.windows import WindowedAligner, WindowingConfig

        rng = random.Random(91)
        text = "".join(rng.choice("ACGT") for _ in range(600))
        read = "".join(
            rng.choice("ACGT") if rng.random() < 0.04 else char
            for char in text[80:480])
        lin = self._chain(text)
        config = WindowingConfig(window_size=128, overlap=48, k=16)
        reference = WindowedAligner(config, backend="python").align(
            lin, read, anchor=(100, 20))
        forced = WindowedAligner(
            config, backend=self._forced_numpy()).align(
            lin, read, anchor=(100, 20))
        assert (reference.distance, reference.cigar, reference.path,
                reference.windows, reference.rescues) == \
            (forced.distance, forced.cigar, forced.path,
             forced.windows, forced.rescues)

    def test_registry_kernel_defers_below_crossover(self):
        """The registered numpy backend opts out of windows narrower
        than its measured crossover — the fallback recurrence is
        faster there and results are identical either way."""
        from repro.align.backends import NumpyBackend

        backend = get_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.chain_bitvectors("ACGT" * 16, "ACGTAC", 2) is None
        wide = "ACGT" * ((backend.chain_kernel_min_bits + 3) // 4)
        assert backend.chain_bitvectors(wide + "ACGT", wide, 2) \
            is not None

    def test_kernel_falls_back_on_budget_blowout(self, monkeypatch):
        """A window too large for the packed word budget must fall
        back (return None), never raise — backend interchangeability
        includes inputs only the python path can afford."""
        from repro.align import backends as backends_module

        def exploding(*args, **kwargs):
            raise AlignmentSizeError("forced blowout")

        monkeypatch.setattr(backends_module, "packed_chain_rows",
                            exploding)
        forced = self._forced_numpy()
        assert forced.chain_bitvectors("ACGT" * 200,
                                       "ACGT" * 160, 2) is None


def _random_batch(rng: random.Random) -> tuple[list, int]:
    """One randomized batch of (text, pattern) jobs sharing a ``k``.

    The mix deliberately covers the batched kernel's hazard cases:
    mixed lengths spanning the 64-bit word boundary (so one call
    exercises several packed-width buckets), N-bearing reads, and
    k-overflow jobs (``m > n + k``) riding along with alignable ones.
    """
    k = rng.randrange(0, 10)
    jobs = []
    for _ in range(rng.randrange(1, 12)):
        shape = rng.random()
        if shape < 0.12:
            # k-overflow: more pattern than the text plus k edits
            # can ever absorb.  Must resolve to None in-batch.
            n = rng.randrange(0, 15)
            text = "".join(rng.choice("ACGT") for _ in range(n))
            m = n + k + rng.randrange(1, 10)
            pattern = "".join(rng.choice("ACGT") for _ in range(m))
        elif shape < 0.26:
            # N-containing read over an N-free (or N-bearing) text.
            n = rng.randrange(8, 80)
            alphabet = "ACGTN" if rng.random() < 0.3 else "ACGT"
            text = "".join(rng.choice(alphabet) for _ in range(n))
            m = rng.randrange(1, min(20, n))
            pattern = "".join(rng.choice("ACGTN") for _ in range(m))
        else:
            # Mutated substring; m crosses the word boundary often
            # enough that batches mix packed widths.
            n = rng.randrange(20, 180)
            text = "".join(rng.choice("ACGT") for _ in range(n))
            m = rng.randrange(4, min(130, n))
            start = rng.randrange(0, n - m + 1)
            pattern = "".join(
                rng.choice("ACGT") if rng.random() < 0.1 else char
                for char in text[start:start + m])
        jobs.append((text, pattern))
    return jobs, k


class TestBatchedAlignMany:
    """Parity harness for the cross-read batched kernel path.

    ``NumpyBackend.align_many`` packs length-bucketed jobs into one
    word-packed tensor and sweeps the wavefront across all of them in
    one pass; everything a caller can observe must stay bit-for-bit
    identical to the base-class loop (``[align(t, p, k) ...]``) and
    to the python backend.  Raw bitvector cells legitimately differ
    below the relevance floor (the batched sweep maintains a
    bucket-conservative superset band), so the harness compares
    observable results only — alignment tuples, never cells.
    """

    def test_matches_scalar_loop_and_python(self):
        numpy_backend = get_backend("numpy")
        python_backend = get_backend("python")
        rng = random.Random(0xBA7C4)
        alignable = 0
        for _ in range(40):
            jobs, k = _random_batch(rng)
            got = numpy_backend.align_many(jobs, k)
            loop = AlignmentBackend.align_many(numpy_backend, jobs, k)
            ref = python_backend.align_many(jobs, k)
            assert len(got) == len(loop) == len(ref) == len(jobs)
            for job, fast, slow, pure in zip(jobs, got, loop, ref):
                context = f"job={job!r} k={k}"
                assert (fast is None) == (slow is None) \
                    == (pure is None), context
                if fast is None:
                    continue
                alignable += 1
                assert (fast.distance, fast.start, fast.cigar) == \
                    (slow.distance, slow.start, slow.cigar), context
                assert (fast.distance, fast.start, fast.cigar) == \
                    (pure.distance, pure.start, pure.cigar), context
        # The generator must actually exercise the batched path.
        assert alignable > 60

    def test_against_bitap_and_dp_oracles(self):
        """Every batched result cross-checked against the independent
        1-active Bitap and exact-DP oracles, per job."""
        backend = get_backend("numpy")
        rng = random.Random(0x04AC1E)
        for _ in range(25):
            jobs, k = _random_batch(rng)
            results = backend.align_many(jobs, k)
            for (text, pattern), result in zip(jobs, results):
                context = f"text={text!r} pattern={pattern!r} k={k}"
                oracle = bitap_distance(text, pattern, k)
                if result is None:
                    assert oracle is None, context
                else:
                    assert oracle == result.distance, context
                if text:
                    exact = semiglobal_distance(text, pattern)[0]
                    if exact <= k:
                        assert result is not None \
                            and result.distance == exact, context
                    else:
                        assert result is None, context

    def test_empty_batch(self):
        for name in sorted(list_backends()):
            assert get_backend(name).align_many([], 3) == []

    def test_batch_of_one(self):
        backend = get_backend("numpy")
        text = "ACGTAGGCTTACGA"
        many = backend.align_many([(text, "TAGGCTT")], 2)
        single = backend.align(text, "TAGGCTT", 2)
        assert len(many) == 1 and many[0] is not None
        assert (many[0].distance, many[0].start, many[0].cigar) == \
            (single.distance, single.start, single.cigar)

    def test_k_overflow_job_rides_along(self):
        """An m > n + k job resolves to None inside a batch without
        poisoning its batch-mates' results."""
        backend = get_backend("numpy")
        text = "ACGTACGTTGCA"
        jobs = [(text, "GTAC"), ("AC", "ACGTACGTAC"), (text, "TTGC")]
        results = backend.align_many(jobs, 1)
        assert results[1] is None
        assert results[0] is not None \
            and (results[0].distance, results[0].start) == (0, 2)
        assert results[2] is not None \
            and (results[2].distance, results[2].start) == (0, 7)

    def test_validates_every_job(self):
        backend = get_backend("numpy")
        with pytest.raises(ValueError):
            backend.align_many([("ACGT", "AC"), ("ACGT", "")], 1)
        with pytest.raises(ValueError):
            backend.align_many([("ACGT", "AC")], -1)

    def test_per_job_word_budget(self):
        backend = get_backend("numpy")
        with pytest.raises(AlignmentSizeError):
            backend.align_many([("ACGT" * 300, "ACGT" * 250)],
                               100, max_words=10)


class TestBatchedChainKernel:
    """``chain_bitvectors_many`` against the per-window kernel."""

    @staticmethod
    def _forced_numpy():
        from repro.align.backends import NumpyBackend

        return NumpyBackend(chain_kernel_min_bits=0)

    def test_rows_agree_on_best_start(self):
        rng = random.Random(0xC4A1)
        backend = self._forced_numpy()
        served = 0
        for _ in range(25):
            k = rng.randrange(1, 8)
            jobs = []
            for _ in range(rng.randrange(1, 8)):
                n = rng.randrange(8, 120)
                text = "".join(rng.choice("ACGT") for _ in range(n))
                m = rng.randrange(2, min(40, n + 1))
                start = rng.randrange(0, n - m + 1)
                pattern = "".join(
                    rng.choice("ACGT") if rng.random() < 0.1 else char
                    for char in text[start:start + m])
                jobs.append((text, pattern))
            many = backend.chain_bitvectors_many(jobs, k)
            assert len(many) == len(jobs)
            for (text, pattern), rows in zip(jobs, many):
                single = backend.chain_bitvectors(text, pattern, k)
                assert (rows is None) == (single is None)
                if rows is None:
                    continue
                served += 1
                assert len(rows) == len(single) == len(text)
                assert rows.best_start() == single.best_start()
                anchor = [rng.randrange(0, len(text))]
                assert rows.best_start(candidates=anchor) == \
                    single.best_start(candidates=anchor)
        assert served > 20

    def test_registered_gate_still_applies_to_singletons(self):
        """A lone narrow window goes through the scalar plan and hits
        the per-call crossover gate, exactly as before."""
        backend = get_backend("numpy")
        assert backend.chain_bitvectors_many(
            [("ACGT" * 16, "ACGTAC")], 2) == [None]


class TestBatchCostModel:
    """The hw-model-derived scheduling oracle."""

    @staticmethod
    def _model():
        from repro.align.bitalign_batched import BatchCostModel

        return BatchCostModel()

    def test_slope_comes_from_public_anchors(self):
        from repro.hw.bitalign_unit import BitAlignCycleModel

        model = self._model()
        hw = BitAlignCycleModel()
        assert model.cycles_per_word == \
            hw.cycles_per_window(128) - hw.cycles_per_window(64)

    def test_singleton_is_never_batched(self):
        plan = self._model().plan([(128, 100)], 10)
        assert plan == [("scalar", [0])]

    def test_uniform_fleet_batches(self):
        plan = self._model().plan([(128, 100)] * 64, 10)
        batched = [indices for kind, indices in plan
                   if kind == "batched"]
        assert batched and sorted(sum(batched, [])) == list(range(64))

    def test_every_index_appears_exactly_once(self):
        rng = random.Random(0x9141)
        model = self._model()
        for _ in range(20):
            shapes = [(rng.randrange(1, 400), rng.randrange(1, 200))
                      for _ in range(rng.randrange(1, 30))]
            plan = model.plan(shapes, rng.randrange(0, 12))
            seen = sorted(
                index for _, indices in plan for index in indices)
            assert seen == list(range(len(shapes)))

    def test_cross_bucket_singletons_stay_scalar(self):
        """One job per packed-width bucket: nothing to amortize, so
        the oracle keeps every job on the per-call path."""
        plan = self._model().plan([(100, 40), (200, 100), (300, 150)],
                                  6)
        assert all(kind == "scalar" for kind, _ in plan)

    def test_batched_beats_scalar_prediction(self):
        model = self._model()
        shapes = [(150, 120)] * 32
        scalar = sum(model.scalar_cycles(n, m, 10) for n, m in shapes)
        batched = model.batched_cycles([n for n, _ in shapes], 10,
                                       words_for(120))
        assert batched < scalar


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"python", "numpy"} <= set(list_backends())

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="unknown alignment backend"):
            get_backend("fpga")

    def test_resolve_accepts_instance_name_and_none(self):
        numpy_backend = get_backend("numpy")
        assert resolve_backend(numpy_backend) is numpy_backend
        assert resolve_backend("numpy") is numpy_backend
        assert resolve_backend(None).name == default_backend_name()

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ALIGN_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_ALIGN_BACKEND", "quantum")
        with pytest.raises(ValueError, match="unknown alignment"):
            default_backend_name()
        monkeypatch.delenv("REPRO_ALIGN_BACKEND")
        assert default_backend_name() == "python"

    def test_register_backend_rejects_anonymous(self):
        with pytest.raises(ValueError):
            register_backend(AlignmentBackend())

    def test_register_replaces_and_restores(self):
        class Stub(AlignmentBackend):
            name = "stub-backend"

            def distance(self, text, pattern, k):
                return (0, 0)

            def align(self, text, pattern, k, max_words=0):
                return BackendAlignment(0, None, 0)

        try:
            register_backend(Stub())
            assert "stub-backend" in list_backends()
            assert get_backend("stub-backend").distance("A", "A", 0) \
                == (0, 0)
        finally:
            from repro.align import backends as backends_module

            backends_module._REGISTRY.pop("stub-backend", None)
        assert "stub-backend" not in list_backends()


class TestPackedLayout:
    def test_words_and_padding(self):
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2
        layout = PackedLayout(128)
        assert (layout.words, layout.bytes_per_bitvector,
                layout.padded_bits) == (2, 16, 128)
        layout = PackedLayout(100)
        assert (layout.words, layout.bytes_per_bitvector,
                layout.padded_bits) == (2, 16, 128)
        with pytest.raises(ValueError):
            PackedLayout(0)

    def test_pack_roundtrip(self):
        value = (1 << 130) - 12345
        words = pack_int(value, words_for(131))
        assert words.dtype == "uint64"
        assert unpack_words(words) == value

    def test_cycle_model_reads_packed_layout(self):
        from repro.hw.bitalign_unit import BitAlignCycleModel

        model = BitAlignCycleModel()
        layout = model.packed_layout()
        assert layout.pattern_bits == model.config.bits_per_pe
        assert layout.words == words_for(model.config.bits_per_pe)
        assert model.scratchpad_write_bytes_per_cycle() == \
            layout.bytes_per_bitvector * model.config.pe_count
        # An odd window width is charged for its padded words.
        assert model.packed_layout(100).bytes_per_bitvector == 16

    def test_word_bits_constant(self):
        assert WORD_BITS == 64
