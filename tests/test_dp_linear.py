"""Tests for the linear DP aligners (global and fitting)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_linear import (
    AlignmentSizeError,
    edit_distance,
    global_align,
    semiglobal_align,
    semiglobal_distance,
)
from repro.core.alignment import replay_alignment

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


def reference_levenshtein(a: str, b: str) -> int:
    """Textbook O(mn) scalar implementation for cross-checking."""
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(min(
                previous[j - 1] + (ca != cb),
                previous[j] + 1,
                current[-1] + 1,
            ))
        previous = current
    return previous[-1]


class TestEditDistance:
    def test_known_values(self):
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("ACGT", "ACCT") == 1
        assert edit_distance("ACGT", "") == 4
        assert edit_distance("", "ACGT") == 4
        assert edit_distance("ACGT", "AGT") == 1

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_matches_textbook(self, a, b):
        assert edit_distance(a, b) == reference_levenshtein(a, b)

    @settings(max_examples=50, deadline=None)
    @given(dna, dna)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=50, deadline=None)
    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= \
            edit_distance(a, b) + edit_distance(b, c)


class TestSemiglobal:
    def test_exact_substring_is_free(self):
        distance, end = semiglobal_distance("AAACGTAAA", "ACGT")
        assert distance == 0
        assert end == 6

    def test_mismatch_costs_one(self):
        distance, _ = semiglobal_distance("AAACCTAAA", "ACGT")
        assert distance == 1

    def test_empty_reference(self):
        assert semiglobal_distance("", "ACGT") == (4, 0)

    def test_empty_read_rejected(self):
        with pytest.raises(ValueError):
            semiglobal_distance("ACGT", "")

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_brute_force_equivalence(self, reference, read):
        """Fitting distance == min global distance over all reference
        substrings."""
        expected = min(
            reference_levenshtein(reference[i:j], read)
            for i in range(len(reference) + 1)
            for j in range(i, len(reference) + 1)
        )
        distance, _ = semiglobal_distance(reference, read)
        assert distance == expected

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_align_replays_and_matches_distance(self, reference, read):
        result = semiglobal_align(reference, read)
        distance, _ = semiglobal_distance(reference, read)
        assert result.distance == distance
        consumed = reference[result.ref_start:result.ref_end]
        assert replay_alignment(result.cigar, read, consumed) == \
            result.distance

    def test_size_guard(self):
        with pytest.raises(AlignmentSizeError):
            semiglobal_align("ACGT" * 100, "ACGT" * 100, max_cells=10)


class TestGlobal:
    def test_identical(self):
        result = global_align("ACGT", "ACGT")
        assert result.distance == 0
        assert str(result.cigar) == "4="

    def test_known_alignment(self):
        result = global_align("ACGT", "AGT")
        assert result.distance == 1
        assert result.cigar.deletions == 1

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_distance_matches_edit_distance(self, a, b):
        result = global_align(a, b)
        assert result.distance == edit_distance(a, b)
        assert replay_alignment(result.cigar, b, a) == result.distance

    def test_size_guard(self):
        with pytest.raises(AlignmentSizeError):
            global_align("A" * 100, "A" * 100, max_cells=10)
