"""Tests for the Observation 4 CPU scaling model."""

from __future__ import annotations

import pytest

from repro.eval.scaling import (
    ALIGNMENT_MISS_SHARE_AT_40,
    MEASURED_MISS_RATES,
    CpuScalingModel,
    observation4_rows,
)


class TestCpuScalingModel:
    def test_miss_rate_anchors(self):
        model = CpuScalingModel()
        for threads, rate in MEASURED_MISS_RATES.items():
            assert model.cache_miss_rate(threads) == \
                pytest.approx(rate)

    def test_miss_rate_interpolates(self):
        model = CpuScalingModel()
        mid = model.cache_miss_rate(15)
        assert 0.25 < mid < 0.29

    def test_efficiency_below_paper_ceiling(self):
        """Observation 4: parallel efficiency does not exceed 0.4 at
        the measured thread counts (>= 10)."""
        model = CpuScalingModel()
        for threads in (10, 20, 40):
            assert model.parallel_efficiency(threads) < 0.4

    def test_efficiency_decreases_with_threads(self):
        model = CpuScalingModel()
        efficiencies = [model.parallel_efficiency(t)
                        for t in (5, 10, 20, 40)]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_throughput_never_regresses(self):
        """Sublinear is not negative: more threads never hurt."""
        model = CpuScalingModel()
        throughputs = [model.relative_throughput(t)
                       for t in (5, 10, 20, 40)]
        for before, after in zip(throughputs, throughputs[1:]):
            assert after >= before

    def test_saturation_region_flattens(self):
        model = CpuScalingModel()
        gain_early = model.relative_throughput(10) \
            - model.relative_throughput(5)
        gain_late = model.relative_throughput(40) \
            - model.relative_throughput(20)
        assert gain_late < gain_early

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuScalingModel().cache_miss_rate(0)

    def test_alignment_miss_share_constant(self):
        assert ALIGNMENT_MISS_SHARE_AT_40 == 0.76


class TestObservation4Rows:
    def test_rows_shape(self):
        rows = observation4_rows()
        assert [r["threads"] for r in rows] == [5, 10, 20, 40]
        for row in rows:
            if row["cache_miss_rate (paper)"] is not None:
                assert row["cache_miss_rate (model)"] == \
                    pytest.approx(row["cache_miss_rate (paper)"])
