"""Tests for FASTA/FASTQ reading and writing."""

from __future__ import annotations

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.fasta import (
    FastaFormatError,
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=300)
names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters=">@ "),
    min_size=1, max_size=20,
)


class TestFastaRead:
    def test_single_record(self):
        handle = io.StringIO(">chr1 test chromosome\nACGT\nACGT\n")
        records = read_fasta(handle)
        assert len(records) == 1
        assert records[0].name == "chr1"
        assert records[0].description == "test chromosome"
        assert records[0].sequence == "ACGTACGT"

    def test_multi_record(self):
        handle = io.StringIO(">a\nAC\n>b\nGT\n")
        records = read_fasta(handle)
        assert [r.name for r in records] == ["a", "b"]
        assert [r.sequence for r in records] == ["AC", "GT"]

    def test_blank_lines_ignored(self):
        handle = io.StringIO(">a\n\nAC\n\nGT\n")
        assert read_fasta(handle)[0].sequence == "ACGT"

    def test_sequence_before_header_rejected(self):
        with pytest.raises(FastaFormatError):
            read_fasta(io.StringIO("ACGT\n>a\nAC\n"))

    def test_empty_header_rejected(self):
        with pytest.raises(FastaFormatError):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_empty_file(self):
        assert read_fasta(io.StringIO("")) == []


class TestFastaRoundtrip:
    @given(st.lists(st.tuples(names, dna), min_size=1, max_size=5,
                    unique_by=lambda t: t[0]))
    def test_write_read_roundtrip(self, items):
        records = [FastaRecord(name, sequence) for name, sequence in items]
        buffer = io.StringIO()
        write_fasta(buffer, records, line_width=60)
        buffer.seek(0)
        parsed = read_fasta(buffer)
        assert [(r.name, r.sequence) for r in parsed] == items

    def test_line_width_respected(self):
        buffer = io.StringIO()
        write_fasta(buffer, [FastaRecord("a", "A" * 100)], line_width=25)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == ">a"
        assert all(len(line) == 25 for line in lines[1:])

    def test_nonpositive_line_width_rejected(self):
        with pytest.raises(ValueError):
            write_fasta(io.StringIO(), [], line_width=0)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("chr1", "ACGTACGT", "desc here")])
        records = read_fasta(path)
        assert records[0].description == "desc here"
        assert records[0].sequence == "ACGTACGT"


class TestFastq:
    def test_read_single(self):
        handle = io.StringIO("@r1\nACGT\n+\nIIII\n")
        records = read_fastq(handle)
        assert records[0].name == "r1"
        assert records[0].sequence == "ACGT"
        assert records[0].quality == "IIII"

    def test_quality_length_mismatch_rejected(self):
        with pytest.raises(FastaFormatError):
            read_fastq(io.StringIO("@r1\nACGT\n+\nII\n"))

    def test_missing_plus_rejected(self):
        with pytest.raises(FastaFormatError):
            read_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n"))

    def test_missing_at_rejected(self):
        with pytest.raises(FastaFormatError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    @given(st.lists(st.tuples(names, dna), min_size=1, max_size=4))
    def test_roundtrip(self, items):
        records = [FastqRecord(name, sequence, "I" * len(sequence))
                   for name, sequence in items]
        buffer = io.StringIO()
        write_fastq(buffer, records)
        buffer.seek(0)
        parsed = read_fastq(buffer)
        assert [(r.name, r.sequence, r.quality) for r in parsed] == \
            [(r.name, r.sequence, r.quality) for r in records]

    def test_len(self):
        assert len(FastqRecord("r", "ACGT", "IIII")) == 4


class TestCrlf:
    """CRLF (Windows) files must parse byte-identically to Unix files."""

    def test_fasta_crlf(self):
        handle = io.StringIO(">chr1 desc\r\nACGT\r\nTTGG\r\n")
        records = read_fasta(handle)
        assert records[0].name == "chr1"
        assert records[0].description == "desc"
        assert records[0].sequence == "ACGTTTGG"

    def test_fasta_crlf_blank_lines(self):
        # A CRLF blank line must not be mistaken for sequence data.
        handle = io.StringIO("\r\n>a\r\n\r\nAC\r\nGT\r\n")
        assert read_fasta(handle)[0].sequence == "ACGT"

    def test_fastq_crlf(self):
        handle = io.StringIO("@r1 d\r\nACGT\r\n+\r\nIIII\r\n")
        records = read_fastq(handle)
        assert records[0].name == "r1"
        assert records[0].description == "d"
        assert records[0].sequence == "ACGT"
        assert records[0].quality == "IIII"

    def test_crlf_fixture_file(self, tmp_path):
        path = tmp_path / "crlf.fa"
        path.write_bytes(b">a one\r\nACGT\r\n>b\r\nTTAA\r\n")
        records = read_fasta(path)
        assert [(r.name, r.sequence) for r in records] == \
            [("a", "ACGT"), ("b", "TTAA")]
        for record in records:
            assert "\r" not in record.sequence
            assert "\r" not in record.description


class TestHeaderWhitespace:
    """Identifiers end at the first whitespace of *any* kind."""

    def test_fasta_tab_separated_header(self):
        records = read_fasta(io.StringIO(">chr1\tassembly=x\nACGT\n"))
        assert records[0].name == "chr1"
        assert records[0].description == "assembly=x"
        assert "\t" not in records[0].name

    def test_fastq_tab_separated_header(self):
        records = read_fastq(
            io.StringIO("@r1\tBC:Z:ACGT\nACGT\n+\nIIII\n"))
        assert records[0].name == "r1"
        assert records[0].description == "BC:Z:ACGT"

    def test_mixed_space_tab(self):
        records = read_fasta(io.StringIO(">c\t d  e\nAC\n"))
        assert records[0].name == "c"
        assert records[0].description == "d  e"


class TestGzipInputs:
    """``.gz`` inputs are detected (magic bytes or extension) and
    decompressed transparently."""

    @staticmethod
    def _gz(path, text):
        import gzip as gzip_mod

        with gzip_mod.open(path, "wt", encoding="ascii") as handle:
            handle.write(text)

    def test_fasta_gz(self, tmp_path):
        path = tmp_path / "ref.fa.gz"
        self._gz(path, ">chr1\nACGTACGT\n")
        records = read_fasta(path)
        assert records[0].sequence == "ACGTACGT"

    def test_fastq_gz(self, tmp_path):
        path = tmp_path / "reads.fq.gz"
        self._gz(path, "@r1\nACGT\n+\nIIII\n")
        records = read_fastq(path)
        assert records[0].sequence == "ACGT"

    def test_gzip_magic_without_extension(self, tmp_path):
        # Detection is by magic bytes, not only by extension.
        path = tmp_path / "ref.fa"
        self._gz(path, ">a\nACGT\n")
        assert read_fasta(path)[0].sequence == "ACGT"

    def test_read_sequences_gz(self, tmp_path):
        from repro.io.fasta import read_sequences

        path = tmp_path / "reads.fa.gz"
        self._gz(path, ">r1\nACGT\n>r2\nTTGG\n")
        assert read_sequences(path) == [("r1", "ACGT"),
                                        ("r2", "TTGG")]

    def test_mate_pairs_gz(self, tmp_path):
        from repro.io.fasta import read_mate_pairs

        p1 = tmp_path / "r1.fq.gz"
        p2 = tmp_path / "r2.fq.gz"
        self._gz(p1, "@p/1\nACGT\n+\nIIII\n")
        self._gz(p2, "@p/2\nTTGG\n+\nIIII\n")
        assert read_mate_pairs(p1, p2) == [("p", "ACGT", "TTGG")]

    def test_plain_text_still_works(self, tmp_path):
        path = tmp_path / "ref.fa"
        path.write_text(">a\nACGT\n")
        assert read_fasta(path)[0].sequence == "ACGT"
