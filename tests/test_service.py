"""Service layer: protocol, micro-batching, daemon, client.

The load-bearing guarantee is at the bottom of most tests here:
whatever path a read takes through the service — serial dispatch,
manual coalescing, the socket daemon with a pipelining client — its
SAM record must be byte-identical to the offline
``repro map --index`` result on the same read.
"""

from __future__ import annotations

import io
import random
import time

import pytest

from repro.api import Mapper
from repro.io.sam import result_to_sam, write_sam
from repro.service.batcher import MicroBatcher
from repro.service.client import ServiceClient, payload_to_sam_record
from repro.service.core import ServiceCore
from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ServiceError,
    encode_line,
    error_response,
    parse_request,
)
from repro.service.server import ServiceServer
from repro.service.stats import LatencyWindow, ServiceCounters
from repro.sim.reference import random_reference
from repro.sim.shortread import ShortReadProfile, simulate_short_reads


@pytest.fixture(scope="module")
def service_env(tmp_path_factory):
    """A saved index artifact plus simulated reads and their offline
    ('ground truth') SAM bytes."""
    rng = random.Random(0x5E81)
    reference = random_reference(12_000, rng)
    artifact = tmp_path_factory.mktemp("service") / "ref.sgidx"
    Mapper(reference, name="chr1").save_index(artifact)

    sim = simulate_short_reads(
        reference, 24, random.Random(31),
        ShortReadProfile.illumina(80, 0.01))
    reads = [(r.name, r.sequence) for r in sim]

    offline = Mapper.from_artifact(artifact)
    records = offline.map_batch(reads)
    sam = [result_to_sam(rec.result, seq, rec.contig)
           for rec, (_, seq) in zip(records, reads)]
    buffer = io.StringIO()
    write_sam(buffer, sam, contigs=offline.contigs)
    return {
        "artifact": artifact,
        "reference": reference,
        "reads": reads,
        "offline_records": records,
        "offline_sam": buffer.getvalue(),
        "contigs": offline.contigs,
    }


def make_core(service_env, **kwargs) -> ServiceCore:
    kwargs.setdefault("mode", "serial")
    return ServiceCore(Mapper.from_artifact(service_env["artifact"]),
                       **kwargs)


def served_sam(service_env, payloads) -> str:
    records = [payload_to_sam_record(p["sam"]) for p in payloads]
    buffer = io.StringIO()
    write_sam(buffer, records, contigs=service_env["contigs"])
    return buffer.getvalue()


class TestProtocol:
    def test_encode_line_is_deterministic(self):
        a = encode_line({"b": 1, "a": [2, {"z": 3, "y": 4}]})
        b = encode_line({"a": [2, {"y": 4, "z": 3}], "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_parse_single_read(self):
        request = parse_request(
            '{"op": "map", "id": 7, "read": "ACGT"}')
        assert request == {"op": "map", "id": 7,
                           "reads": [("read", "ACGT")]}

    def test_parse_batch_normalizes_entries(self):
        request = parse_request(
            '{"op": "map_batch", "reads": ["ACGT", ["r9", "TTTT"]]}')
        assert request["reads"] == [("read0", "ACGT"), ("r9", "TTTT")]

    def test_parse_pair(self):
        request = parse_request(
            '{"op": "map_pair", "read1": "AC", "read2": "GT",'
            ' "name": "p"}')
        assert request["pair"] == ("p", "AC", "GT")

    @pytest.mark.parametrize("line", [
        "not json at all",
        "[1, 2, 3]",
        '{"op": "explode"}',
        '{"op": "map"}',
        '{"op": "map", "read": ""}',
        '{"op": "map", "read": 42}',
        '{"op": "map", "read": "ACGT", "name": 5}',
        '{"op": "map_batch"}',
        '{"op": "map_batch", "reads": []}',
        '{"op": "map_batch", "reads": [["only-name"]]}',
        '{"op": "map_pair", "read1": "ACGT"}',
    ])
    def test_malformed_requests_are_typed_errors(self, line):
        with pytest.raises(ServiceError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == "bad_request"

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            error_response(1, "no_such_code", "boom")
        with pytest.raises(ValueError):
            ServiceError("no_such_code", "boom")

    def test_error_codes_vocabulary(self):
        assert {"bad_request", "invalid_read", "overloaded",
                "timeout", "shutting_down",
                "internal"} == ERROR_CODES


class TestServiceCoreSerial:
    """The deterministic single-threaded mode: every op round-trips."""

    @pytest.fixture(scope="class")
    def core(self, service_env):
        return make_core(service_env)

    def test_ping(self, core):
        response = core.handle_line('{"op": "ping", "id": 1}')
        assert response["ok"] and response["id"] == 1
        assert response["result"]["protocol"] == PROTOCOL_VERSION

    def test_contigs(self, core, service_env):
        response = core.handle_line('{"op": "contigs"}')
        assert response["result"]["contigs"] == [
            [name, length]
            for name, length in service_env["contigs"]]

    def test_map_matches_offline_record(self, core, service_env):
        name, sequence = service_env["reads"][0]
        offline = service_env["offline_records"][0]
        response = core.handle(parse_request(encode_line(
            {"op": "map", "read": sequence, "name": name}
        ).decode().strip()))
        payload = response["result"]["reads"][0]
        assert payload["record"]["mapped"] == offline.mapped
        assert payload["record"]["position"] == offline.position
        assert payload["record"]["cigar"] == offline.cigar

    def test_map_batch_sam_bytes_match_offline(self, core,
                                               service_env):
        response = core.handle(parse_request(encode_line({
            "op": "map_batch",
            "reads": [[n, s] for n, s in service_env["reads"]],
        }).decode().strip()))
        assert served_sam(service_env, response["result"]["reads"]) \
            == service_env["offline_sam"]

    def test_map_pair(self, core, service_env):
        (_, r1), (_, r2) = service_env["reads"][:2]
        response = core.handle_line(encode_line({
            "op": "map_pair", "read1": r1, "read2": r2,
            "name": "p0"}).decode().strip())
        result = response["result"]
        assert len(result["mates"]) == 2
        assert result["mates"][0]["record"]["paired"]
        assert result["mates"][0]["sam"]["qname"] == "p0/1"

    def test_invalid_read_is_typed(self, core):
        response = core.handle_line('{"op": "map", "read": "ACGTX?"}')
        assert not response["ok"]
        assert response["error"]["code"] == "invalid_read"

    def test_malformed_line_is_typed(self, core):
        response = core.handle_line("}{")
        assert not response["ok"]
        assert response["id"] is None
        assert response["error"]["code"] == "bad_request"


class TestMicroBatching:
    def test_manual_mode_coalesces_into_one_dispatch(
            self, service_env):
        core = make_core(service_env, mode="manual", batch_size=64)
        slots = [core.submit(parse_request(encode_line(
            {"op": "map", "read": seq, "name": name}
        ).decode().strip()))
            for name, seq in service_env["reads"]]
        assert core.batcher.queue_depth == len(service_env["reads"])
        assert core.batcher.drain_once() == len(service_env["reads"])
        payloads = [slot.resolve()["result"]["reads"][0]
                    for slot in slots]
        # One shared kernel dispatch...
        assert core.counters.batches_dispatched == 1
        assert core.counters.max_batch_size == len(
            service_env["reads"])
        # ...and still byte-identical to the offline SAM.
        assert served_sam(service_env, payloads) \
            == service_env["offline_sam"]

    def test_batch_size_caps_one_drain(self, service_env):
        core = make_core(service_env, mode="manual", batch_size=10)
        for name, seq in service_env["reads"]:
            core.submit(parse_request(encode_line(
                {"op": "map", "read": seq, "name": name}
            ).decode().strip()))
        drained = core.batcher.drain_once()
        assert drained == 10
        assert core.batcher.queue_depth \
            == len(service_env["reads"]) - 10

    def test_mixed_reads_and_pairs_in_one_drain(self, service_env):
        core = make_core(service_env, mode="manual")
        (n1, s1), (n2, s2) = service_env["reads"][:2]
        read_slot = core.submit(parse_request(
            f'{{"op": "map", "read": "{s1}", "name": "{n1}"}}'))
        pair_slot = core.submit(parse_request(
            f'{{"op": "map_pair", "read1": "{s1}",'
            f' "read2": "{s2}"}}'))
        assert core.batcher.drain_once() == 2
        assert read_slot.resolve()["ok"]
        assert pair_slot.resolve()["ok"]

    def test_thread_mode_matches_serial_results(self, service_env):
        serial = make_core(service_env)
        threaded = make_core(service_env, mode="thread",
                             batch_window_s=0.01, batch_size=8)
        try:
            lines = [encode_line({"op": "map", "read": seq,
                                  "name": name}).decode().strip()
                     for name, seq in service_env["reads"]]
            slots = [threaded.submit(parse_request(line))
                     for line in lines]
            threaded_payloads = [
                slot.resolve()["result"]["reads"][0]
                for slot in slots]
            serial_payloads = [
                serial.handle_line(line)["result"]["reads"][0]
                for line in lines]
            assert threaded_payloads == serial_payloads
        finally:
            threaded.close()


class TestBackpressureTimeoutShutdown:
    def test_overloaded_when_queue_full(self, service_env):
        core = make_core(service_env, mode="manual", max_queue=4)
        for name, seq in service_env["reads"][:4]:
            core.batcher.submit_reads([(name, seq)])
        with pytest.raises(ServiceError) as excinfo:
            core.batcher.submit_reads([("overflow", "ACGT")])
        assert excinfo.value.code == "overloaded"
        assert core.counters.rejected_overloaded == 1
        # Draining makes room again.
        core.batcher.drain_once()
        core.batcher.submit_reads([("after-drain", "ACGT")])

    def test_queue_wait_timeout(self, service_env):
        core = make_core(service_env, mode="manual",
                         timeout_s=0.005)
        ticket = core.batcher.submit_reads(
            [service_env["reads"][0]])
        time.sleep(0.02)
        core.batcher.drain_once()
        with pytest.raises(ServiceError) as excinfo:
            ticket.wait()
        assert excinfo.value.code == "timeout"
        assert core.counters.rejected_timeout == 1

    def test_close_drains_queued_work(self, service_env):
        # A long window would normally delay dispatch; close() must
        # not wait for it, and must resolve every accepted ticket.
        core = make_core(service_env, mode="thread",
                         batch_window_s=30.0, batch_size=1024)
        tickets = [core.batcher.submit_reads([(name, seq)])
                   for name, seq in service_env["reads"][:6]]
        core.close()
        for ticket, (name, _) in zip(tickets,
                                     service_env["reads"][:6]):
            results = ticket.wait()
            assert len(results) == 1
            assert results[0]["record"]["read_name"] == name

    def test_submit_after_close_is_shutting_down(self, service_env):
        core = make_core(service_env, mode="thread")
        core.close()
        with pytest.raises(ServiceError) as excinfo:
            core.batcher.submit_reads([("late", "ACGT")])
        assert excinfo.value.code == "shutting_down"


class TestStats:
    def test_latency_window_percentiles(self):
        window = LatencyWindow(capacity=4)
        assert window.percentile(50) is None
        for value in (0.4, 0.1, 0.3, 0.2):
            window.record(value)
        assert window.percentile(0) == 0.1
        assert window.percentile(95) == 0.4
        # Overwrite wraps: capacity stays bounded.
        window.record(0.9)
        assert len(window) == 4

    def test_counters_reject_unknown_kind(self):
        with pytest.raises(ValueError):
            ServiceCounters().record_rejection("bogus")

    def test_stats_counters_are_accurate(self, service_env):
        core = make_core(service_env)
        reads = service_env["reads"][:3]
        for name, seq in reads:
            core.handle_line(encode_line(
                {"op": "map", "read": seq,
                 "name": name}).decode().strip())
        (_, r1), (_, r2) = service_env["reads"][:2]
        core.handle_line(encode_line(
            {"op": "map_pair", "read1": r1,
             "read2": r2}).decode().strip())
        core.handle_line('{"op": "bogus"}')        # bad_request
        core.handle_line('{"op": "map", "read": "Q"}')  # invalid
        payload = core.handle_line('{"op": "stats"}')["result"]

        service = payload["service"]
        # 3 maps + 1 pair + bad op + invalid read; the stats call
        # itself is still in flight when the snapshot is taken.
        assert service["requests_total"] == 6
        assert service["requests_failed"] == 2
        assert service["reads_mapped"] == 3
        assert service["pairs_mapped"] == 1
        assert service["batches_dispatched"] == 4
        assert service["batch_reads_total"] == 4
        assert service["max_batch_size"] == 1
        assert service["queue_depth"] == 0
        assert service["latency_p50_s"] is not None
        # The mapping-domain stats ride along.
        assert payload["pipeline"]["reads"] == 5  # 3 single + pair
        assert payload["pipeline"]["reads_mapped"] >= 3
        assert payload["protocol"] == PROTOCOL_VERSION

    def test_batcher_validates_knobs(self, service_env):
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, lambda x: x, batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, lambda x: x, max_queue=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda x: x, lambda x: x, mode="warp")


class TestSocketServer:
    def test_tcp_end_to_end_byte_identical(self, service_env):
        core = make_core(service_env, mode="thread",
                         batch_window_s=0.005, batch_size=32)
        server = ServiceServer.tcp(core).start()
        host, port = server.address
        try:
            with ServiceClient.connect(host, port) as client:
                assert client.ping()["status"] == "ok"
                payloads = client.map_stream(service_env["reads"],
                                             window=16)
                assert served_sam(service_env, payloads) \
                    == service_env["offline_sam"]
                stats = client.stats()
                assert stats["service"]["reads_mapped"] \
                    == len(service_env["reads"])
                # Pipelining actually coalesced: fewer dispatches
                # than reads.
                assert stats["service"]["batches_dispatched"] \
                    < len(service_env["reads"])
                assert client.contigs() == service_env["contigs"]
        finally:
            server.stop()

    def test_unix_socket_and_shutdown_op(self, service_env,
                                         tmp_path):
        socket_path = tmp_path / "svc.sock"
        core = make_core(service_env, mode="thread")
        server = ServiceServer.unix(core, socket_path).start()
        client = ServiceClient.connect_unix(str(socket_path))
        name, seq = service_env["reads"][0]
        payload = client.map(seq, name=name)
        assert payload["record"]["read_name"] == name
        assert client.shutdown()["stopping"]
        client.close()
        server.stop()
        assert not socket_path.exists()

    def test_wire_errors_are_typed(self, service_env):
        core = make_core(service_env, mode="thread")
        server = ServiceServer.tcp(core).start()
        host, port = server.address
        try:
            with ServiceClient.connect(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.map("NOT-DNA!")
                assert excinfo.value.code == "invalid_read"
                with pytest.raises(ServiceError) as excinfo:
                    client.call("warp_speed")
                assert excinfo.value.code == "bad_request"
                # The connection survives errors.
                assert client.ping()["status"] == "ok"
        finally:
            server.stop()

    def test_batch_request_over_the_wire(self, service_env):
        core = make_core(service_env, mode="thread")
        server = ServiceServer.tcp(core).start()
        host, port = server.address
        try:
            with ServiceClient.connect(host, port) as client:
                payloads = client.map_batch(service_env["reads"])
                assert served_sam(service_env, payloads) \
                    == service_env["offline_sam"]
                pair = client.map_pair(service_env["reads"][0][1],
                                       service_env["reads"][1][1])
                assert len(pair["mates"]) == 2
        finally:
            server.stop()
