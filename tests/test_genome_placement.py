"""Tests for multi-chromosome genomes and HBM channel placement."""

from __future__ import annotations

import random

import pytest

from repro.core.mapper import SeGraMConfig
from repro.core.windows import WindowingConfig
from repro.graph.genome import ReferenceGenome
from repro.hw.placement import (
    GRCH38_CHROMOSOME_MBP,
    place_chromosomes,
    stack_fits_genome,
)
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants


@pytest.fixture(scope="module")
def genome():
    rng = random.Random(12)
    references = {}
    variants = {}
    profile = VariantProfile(snp_rate=0.003, insertion_rate=0.0005,
                             deletion_rate=0.0005, sv_rate=0.0)
    for name, length in (("chrA", 15_000), ("chrB", 10_000),
                         ("chrC", 6_000)):
        sequence = random_reference(length, rng)
        references[name] = sequence
        variants[name] = simulate_variants(sequence, rng, profile)
    config = SeGraMConfig(
        w=10, k=15, bucket_bits=12, error_rate=0.02,
        windowing=WindowingConfig(window_size=128, overlap=48, k=16),
        max_seeds_per_read=4,
    )
    reference_genome = ReferenceGenome.build(references, variants,
                                             config=config,
                                             max_node_length=3_000)
    return reference_genome, references


class TestReferenceGenome:
    def test_one_graph_and_index_per_chromosome(self, genome):
        reference_genome, references = genome
        assert {c.name for c in reference_genome.chromosomes} == \
            set(references)
        for chromosome in reference_genome.chromosomes:
            assert chromosome.index.distinct_minimizers > 0

    def test_read_maps_to_its_chromosome(self, genome):
        reference_genome, references = genome
        for name, sequence in references.items():
            read = sequence[2_000:2_300]
            result = reference_genome.map_read(read, f"from-{name}")
            assert result.mapped
            assert result.chromosome == name
            assert result.distance == 0

    def test_unmappable_read(self, genome):
        reference_genome, _ = genome
        rng = random.Random(555)
        read = random_reference(100, rng)
        result = reference_genome.map_read(read, "alien")
        if result.mapped:
            assert result.distance > 5

    def test_resident_bytes_ordering(self, genome):
        reference_genome, references = genome
        sizes = reference_genome.resident_bytes()
        # Bigger chromosomes occupy more memory.
        assert sizes["chrA"] > sizes["chrB"] > sizes["chrC"]
        assert reference_genome.total_bytes() == sum(sizes.values())

    def test_duplicate_names_rejected(self, genome):
        reference_genome, _ = genome
        with pytest.raises(ValueError):
            ReferenceGenome(reference_genome.chromosomes
                            + [reference_genome.chromosomes[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReferenceGenome([])


class TestChannelPlacement:
    def test_all_chromosomes_placed_once(self):
        placement = place_chromosomes(GRCH38_CHROMOSOME_MBP, channels=8)
        placed = [name for members in placement.channels
                  for name in members]
        assert sorted(placed) == sorted(GRCH38_CHROMOSOME_MBP)

    def test_human_genome_balances_well(self):
        """Section 8.3: size-based distribution across 8 channels —
        LPT keeps the imbalance small at GRCh38 proportions."""
        placement = place_chromosomes(GRCH38_CHROMOSOME_MBP, channels=8)
        assert placement.imbalance < 1.10

    def test_loads_match_members(self):
        placement = place_chromosomes(GRCH38_CHROMOSOME_MBP, channels=8)
        for members, load in zip(placement.channels, placement.loads):
            assert load == sum(GRCH38_CHROMOSOME_MBP[m]
                               for m in members)

    def test_channel_of(self):
        placement = place_chromosomes({"a": 5, "b": 3}, channels=2)
        assert placement.channel_of("a") != placement.channel_of("b")
        with pytest.raises(KeyError):
            placement.channel_of("zzz")

    def test_single_channel_degenerate(self):
        placement = place_chromosomes({"a": 5, "b": 3}, channels=1)
        assert placement.imbalance == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            place_chromosomes({}, channels=8)
        with pytest.raises(ValueError):
            place_chromosomes({"a": 1}, channels=0)
        with pytest.raises(ValueError):
            place_chromosomes({"a": -1}, channels=2)

    def test_paper_content_fits_stack(self, genome):
        reference_genome, _ = genome
        assert stack_fits_genome(reference_genome.resident_bytes())
        # And at paper scale: 11.2 GB fits, 20 GB would not.
        assert stack_fits_genome({"all": int(11.2 * 2**30)})
        assert not stack_fits_genome({"all": 20 * 2**30})
