"""Tests for the public mapping facade (repro.api).

The acceptance contract of the API redesign:

* ``repro.api.Mapper`` results are **parity-tested** against the
  legacy ``SeGraM`` / ``PairedEndMapper`` engines, under both
  alignment backends and ``jobs`` 1/2;
* multi-contig end-to-end: a 3-contig reference maps pairs to a SAM
  with three ``@SQ`` lines, per-contig RNAME/RNEXT (``=`` shorthand
  intra-contig), and planted inter-contig pairs classified
  ``different_reference`` in PairStats, the SAM ``YC:Z:`` tag, and
  the ``--discordant-out`` report;
* the unmapped-mate SAM record is co-located with the mapped mate's
  *contig* (never a hard-coded single reference name) and
  round-trips.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.api import Mapper, MappingRecord, as_reference_set
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.pairing import (
    CATEGORY_DIFFERENT_REFERENCE,
    PairedEndConfig,
    PairedEndMapper,
)
from repro.core.windows import WindowingConfig
from repro.io.discordant import (
    read_discordant_report,
    write_discordant_report,
)
from repro.io.sam import (
    pair_to_sam,
    read_sam,
    validate_sam_pair,
    validate_sam_record,
    write_sam,
)
from repro.refs import ReferenceSet
from repro.sim.pairedend import (
    PairedEndProfile,
    simulate_fragments,
    simulate_multi_contig_fragments,
)
from repro.sim.reference import multi_contig_reference, random_reference


def _config(**overrides) -> SeGraMConfig:
    base = dict(
        w=10, k=15, bucket_bits=12, error_rate=0.05,
        windowing=WindowingConfig(window_size=128, overlap=48, k=16),
        max_seeds_per_read=4, both_strands=True,
    )
    base.update(overrides)
    return SeGraMConfig(**base)


PROFILE = PairedEndProfile.illumina(
    read_length=100, error_rate=0.01,
    insert_mean=350.0, insert_std=50.0,
)


@pytest.fixture(scope="module")
def single_workload():
    rng = random.Random(0xAB1)
    reference = random_reference(12_000, rng)
    reads = []
    for index in range(8):
        start = rng.randrange(0, len(reference) - 300)
        reads.append((f"read{index}",
                      reference[start:start + 300]))
    fragments = simulate_fragments(reference, 6, rng, PROFILE)
    pairs = [(f.name, f.mate1.sequence, f.mate2.sequence)
             for f in fragments]
    return reference, reads, pairs


@pytest.fixture(scope="module")
def multi_workload():
    rng = random.Random(0xAB2)
    contigs = multi_contig_reference([6_000, 5_000, 4_000], rng)
    fragments = simulate_multi_contig_fragments(
        contigs, 9, rng, PROFILE, inter_pairs=3)
    pairs = [(f.name, f.mate1.sequence, f.mate2.sequence)
             for f in fragments]
    return contigs, fragments, pairs


def _result_key(result):
    return (result.read_name, result.mapped, result.distance,
            str(result.cigar), result.linear_position, result.strand,
            result.mapq, result.second_best_distance,
            result.candidate_count)


class TestFacadeParity:
    """Acceptance: facade == legacy engines, backends x jobs."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_single_end_parity(self, single_workload, backend, jobs):
        reference, reads, _ = single_workload
        config = _config(align_backend=backend)
        legacy = SeGraM.from_reference(reference, config=config,
                                       name="chr1",
                                       max_node_length=1_024)
        facade = Mapper(reference, config=config, name="chr1",
                        max_node_length=1_024)
        expected = legacy.map_batch(reads, jobs=jobs)
        records = facade.map_batch(reads, jobs=jobs)
        assert len(records) == len(expected)
        for record, result in zip(records, expected):
            assert _result_key(record.result) == _result_key(result)
            assert record.contig == "chr1"
            assert record.position == result.linear_position
            assert record.mapq == result.mapq

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_paired_parity(self, single_workload, backend, jobs):
        reference, _, pairs = single_workload
        config = _config(align_backend=backend)
        pair_config = PairedEndConfig(insert_mean=350.0,
                                      insert_std=50.0)
        legacy_engine = PairedEndMapper(
            SeGraM.from_reference(reference, config=config,
                                  name="chr1",
                                  max_node_length=1_024),
            pair_config,
        )
        facade = Mapper(reference, config=config,
                        pair_config=pair_config, name="chr1",
                        max_node_length=1_024)
        expected = legacy_engine.map_pairs(pairs, jobs=jobs)
        records = facade.map_pairs(pairs, jobs=jobs)
        assert len(records) == len(expected)
        for (rec1, rec2), pair in zip(records, expected):
            assert rec1.pair_category == pair.category
            assert rec1.proper_pair == pair.proper
            assert rec1.template_length == pair.template_length
            assert _result_key(rec1.result) == _result_key(pair.mate1)
            assert _result_key(rec2.result) == _result_key(pair.mate2)
            assert rec1.mapq == \
                pair.mate1.mapq_with(proper_pair=pair.proper)
        assert facade.pair_stats.pairs == len(pairs)


class TestFacadeSurface:
    def test_map_returns_record(self, single_workload):
        reference, reads, _ = single_workload
        facade = Mapper(reference, config=_config(), name="chr1",
                        max_node_length=1_024)
        record = facade.map(reads[0][1], reads[0][0])
        assert isinstance(record, MappingRecord)
        assert record.mapped and record.contig == "chr1"
        assert record.cigar and record.edit_distance is not None
        assert not record.paired

    def test_map_batch_accepts_bare_strings(self, single_workload):
        reference, reads, _ = single_workload
        facade = Mapper(reference, config=_config(), name="chr1",
                        max_node_length=1_024)
        records = facade.map_batch([seq for _, seq in reads[:2]])
        assert [r.read_name for r in records] == ["read0", "read1"]

    def test_map_pairs_parallel_lists(self, single_workload):
        reference, _, pairs = single_workload
        facade = Mapper(reference, config=_config(), name="chr1",
                        max_node_length=1_024)
        names = [name for name, _, _ in pairs]
        r1 = [(name, read1) for name, read1, _ in pairs]
        r2 = [(name, read2) for name, _, read2 in pairs]
        records = facade.map_pairs(r1, r2)
        assert [rec1.read_name.rsplit("/", 1)[0]
                for rec1, _ in records] == names
        with pytest.raises(ValueError):
            facade.map_pairs(r1, r2[:-1])
        # A re-sorted R2 list silently pairing unrelated reads would
        # corrupt every pair statistic: names are cross-checked.
        with pytest.raises(ValueError, match="mate name mismatch"):
            facade.map_pairs(r1, list(reversed(r2)))

    def test_graph_reference_rejects_variants(self):
        from repro.graph.builder import Variant
        from repro.graph.genome_graph import GenomeGraph
        from repro.refs import ReferenceSetError

        graph = GenomeGraph(name="g")
        graph.add_node("ACGTACGTACGTACGT")
        with pytest.raises(ReferenceSetError):
            as_reference_set(graph, [Variant(1, 2, "T")])

    def test_as_reference_set_shapes(self, single_workload):
        reference, _, _ = single_workload
        refs = as_reference_set(reference, name="chrZ")
        assert refs.names == ("chrZ",)
        assert as_reference_set(refs) is refs
        pair = as_reference_set([("a", "ACGTACGTACGT"),
                                 ("b", "TTGCATTGCAAC")])
        assert pair.names == ("a", "b")

    def test_from_fasta_multi_record(self, multi_workload, tmp_path):
        from repro.io.fasta import FastaRecord, write_fasta

        contigs, _, _ = multi_workload
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord(n, s) for n, s in contigs])
        facade = Mapper.from_fasta(path, config=_config())
        assert [name for name, _ in facade.contigs] == \
            [name for name, _ in contigs]
        read = contigs[1][1][1_000:1_300]
        record = facade.map(read, "probe")
        assert record.contig == contigs[1][0]
        assert record.position == 1_000


class TestMultiContigEndToEnd:
    """Acceptance: 3-contig paired mapping, SAM + classification."""

    @pytest.fixture(scope="class")
    def mapped(self, multi_workload):
        contigs, fragments, pairs = multi_workload
        facade = Mapper(contigs, config=_config(),
                        pair_config=PairedEndConfig(
                            insert_mean=350.0, insert_std=50.0),
                        max_node_length=1_024)
        records = facade.map_pairs(pairs)
        return contigs, fragments, pairs, facade, records

    def test_sam_has_three_sq_lines(self, mapped):
        contigs, _, pairs, facade, records = mapped
        buffer = io.StringIO()
        sam = []
        for (rec1, _), (_, read1, read2) in zip(records, pairs):
            sam.extend(pair_to_sam(rec1.pair, read1, read2))
        write_sam(buffer, sam, contigs=facade.contigs)
        lines = buffer.getvalue().splitlines()
        sq = [line for line in lines if line.startswith("@SQ")]
        assert sq == [f"@SQ\tSN:{name}\tLN:{len(seq)}"
                      for name, seq in contigs]
        parsed = read_sam(io.StringIO(buffer.getvalue()))
        assert len(parsed) == 2 * len(pairs)
        for rec in parsed:
            validate_sam_record(rec)

    def test_per_contig_rname_and_rnext(self, mapped):
        contigs, fragments, pairs, facade, records = mapped
        names = {name for name, _ in contigs}
        for (rec1, rec2), (_, read1, read2), fragment in zip(
                records, pairs, fragments):
            sam1, sam2 = pair_to_sam(rec1.pair, read1, read2)
            validate_sam_pair(sam1, sam2)
            for sam in (sam1, sam2):
                if not sam.is_unmapped:
                    assert sam.rname in names
            if sam1.is_unmapped or sam2.is_unmapped:
                continue
            if sam1.rname == sam2.rname:
                assert sam1.rnext == "=" and sam2.rnext == "="
            else:
                assert sam1.rnext == sam2.rname
                assert sam2.rnext == sam1.rname
                assert sam1.tlen == sam2.tlen == 0
                assert sam1.pair_category == \
                    CATEGORY_DIFFERENT_REFERENCE

    def test_intra_contig_pairs_place_on_truth_contig(self, mapped):
        _, fragments, _, _, records = mapped
        correct = 0
        intra = 0
        for (rec1, rec2), fragment in zip(records, fragments):
            if fragment.inter_contig:
                continue
            intra += 1
            if (rec1.contig == fragment.mate1.contig
                    and rec2.contig == fragment.mate2.contig):
                correct += 1
        assert intra > 0
        assert correct / intra >= 0.9

    def test_inter_contig_pairs_classified(self, mapped):
        _, fragments, _, facade, records = mapped
        planted = [(recs, f) for recs, f in zip(records, fragments)
                   if f.inter_contig]
        assert len(planted) == 3
        hits = 0
        for (rec1, rec2), fragment in planted:
            if rec1.pair_category == CATEGORY_DIFFERENT_REFERENCE:
                hits += 1
                assert rec1.contig != rec2.contig
                assert rec1.template_length is None
                assert not rec1.proper_pair
        assert hits == 3
        stats = facade.pair_stats
        assert stats.discordant.get(
            CATEGORY_DIFFERENT_REFERENCE, 0) == 3

    def test_discordant_report_round_trips_contigs(self, mapped):
        _, fragments, _, _, records = mapped
        pairs = [rec1.pair for rec1, _ in records]
        buffer = io.StringIO()
        written = write_discordant_report(buffer, pairs)
        assert written >= 3
        parsed = read_discordant_report(
            io.StringIO(buffer.getvalue()))
        by_name = {record.name: record for record in parsed}
        for fragment in fragments:
            if not fragment.inter_contig:
                continue
            record = by_name[fragment.name]
            assert record.category == CATEGORY_DIFFERENT_REFERENCE
            assert record.contig1 != record.contig2
            assert record.template_length is None

    def test_eval_counts_different_reference(self, mapped):
        from repro.eval.metrics import evaluate_paired_mappings

        _, fragments, _, _, records = mapped
        accuracy = evaluate_paired_mappings(
            [rec1.pair for rec1, _ in records], fragments,
            tolerance=30)
        assert accuracy.pairs_different_reference == 3
        assert accuracy.discordant_pairs >= 3
        # Truth contigs gate correctness: mates on the wrong contig
        # can never count as correct.
        assert accuracy.mate_accuracy > 0.8


class TestUnmappedMateContig:
    """Satellite: unmapped-record emission uses the mapped mate's
    contig name, and the pair round-trips through the parser."""

    def test_unmapped_mate_colocated_on_mate_contig(self,
                                                    multi_workload):
        contigs, _, _ = multi_workload
        facade = Mapper(contigs, config=_config(),
                        pair_config=PairedEndConfig(rescue=False),
                        max_node_length=1_024)
        # Mate 1 comes from chr2; mate 2 is junk that cannot map.
        name2, seq2 = contigs[1]
        rng = random.Random(99)
        read1 = seq2[2_000:2_100]
        read2 = "".join(rng.choice("ACGT") for _ in range(100))
        rec1, rec2 = facade.map_pair(read1, read2, "lonely")
        assert rec1.mapped and rec1.contig == name2
        assert not rec2.mapped
        sam1, sam2 = pair_to_sam(rec1.pair, read1, read2)
        validate_sam_pair(sam1, sam2)
        # The unmapped record is co-located with its mate — on the
        # mate's contig, not on any default reference name.
        assert sam2.is_unmapped
        assert sam2.rname == name2
        assert sam2.pos == sam1.pos
        assert sam2.rnext == "=" and sam1.rnext == "="
        buffer = io.StringIO()
        write_sam(buffer, [sam1, sam2], contigs=facade.contigs)
        parsed = read_sam(io.StringIO(buffer.getvalue()))
        assert [(r.qname, r.flag, r.rname, r.pos, r.rnext, r.pnext,
                 r.tlen, r.pair_category) for r in parsed] == \
            [(r.qname, r.flag, r.rname, r.pos, r.rnext, r.pnext,
              r.tlen, r.pair_category) for r in (sam1, sam2)]
        validate_sam_pair(*parsed)
