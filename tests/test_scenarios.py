"""Tests for the scenario benchmark runner
(benchmarks/scenarios/run_scenarios.py): case-matrix hygiene, row
determinism at a fixed seed, and the CSV/artifact output schema.
"""

from __future__ import annotations

import csv
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_RUNNER = Path(__file__).parent.parent / "benchmarks" \
    / "scenarios" / "run_scenarios.py"
_SPEC = importlib.util.spec_from_file_location("run_scenarios",
                                               _RUNNER)
runner = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("run_scenarios", runner)
_SPEC.loader.exec_module(runner)


@pytest.fixture(scope="module")
def matrix():
    return runner.load_cases()


class TestCaseMatrix:
    def test_ids_unique(self, matrix):
        _, cases = matrix
        ids = [case["id"] for case in cases]
        assert len(ids) == len(set(ids))

    def test_quick_subset_nonempty(self, matrix):
        _, cases = matrix
        assert any(case.get("quick") for case in cases)

    def test_axes_valid(self, matrix):
        _, cases = matrix
        for case in cases:
            assert case["read_type"] in ("short_pe", "long_hifi",
                                         "long_ont"), case["id"]
            assert case["density"] in runner.DENSITY_PROFILES, \
                case["id"]
            assert case["backend"] in ("python", "numpy"), case["id"]
            assert case["input_mode"] in ("mem", "stream",
                                          "stream_gzip"), case["id"]
            assert case["jobs"] >= 1 and case["count"] >= 1, \
                case["id"]

    def test_axes_covered(self, matrix):
        """The matrix genuinely sweeps every axis at least once."""
        _, cases = matrix
        seen = {key: {case[key] for case in cases}
                for key in ("read_type", "density", "backend",
                            "jobs", "input_mode")}
        assert seen["read_type"] == {"short_pe", "long_hifi",
                                     "long_ont"}
        assert seen["density"] == {"none", "sparse", "dense"}
        assert seen["backend"] == {"python", "numpy"}
        assert {1, 2} <= seen["jobs"]
        assert seen["input_mode"] == {"mem", "stream",
                                      "stream_gzip"}


def _small_cases(matrix):
    """Two fast cases covering both read shapes and both streaming
    directions, scaled down for unit-test latency."""
    defaults, cases = matrix
    by_id = {case["id"]: case for case in cases}
    pe = dict(by_id["pe_clean_sparse_py_j1_mem"], count=6)
    long_case = dict(by_id["ont_dense_np_j1_gzip"], count=3,
                     read_length=400)
    return defaults, [pe, long_case]


class TestRunner:
    def test_rows_deterministic_across_runs(self, matrix, tmp_path):
        defaults, cases = _small_cases(matrix)
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
        first = runner.run_cases(cases, defaults,
                                 tmp_path / "a", timing=False)
        second = runner.run_cases(cases, defaults,
                                  tmp_path / "b", timing=False)
        assert first == second
        for row in first:
            assert row["elapsed_s"] == 0
            assert row["reads_per_s"] == 0
            assert row["peak_rss_kb"] == 0

    def test_row_schema_and_metrics(self, matrix, tmp_path):
        defaults, cases = _small_cases(matrix)
        rows = runner.run_cases(cases, defaults, tmp_path,
                                timing=True)
        assert [row["id"] for row in rows] == \
            [case["id"] for case in cases]
        for row in rows:
            assert set(row) == set(runner.CSV_COLUMNS)
            assert row["reads"] > 0
            assert 0 <= row["mapped"] <= row["reads"]
            assert row["align_calls"] > 0
            assert row["elapsed_s"] > 0
            assert row["peak_rss_kb"] > 0
        pe_row = rows[0]
        assert pe_row["read_type"] == "short_pe"
        assert pe_row["proper_rate"] != ""
        long_row = rows[1]
        assert long_row["proper_rate"] == ""

    def test_outputs_csv_and_artifacts(self, matrix, tmp_path):
        defaults, cases = _small_cases(matrix)
        workdir = tmp_path / "work"
        workdir.mkdir()
        rows = runner.run_cases(cases, defaults, workdir,
                                timing=False)
        outdir = tmp_path / "out"
        csv_path = runner.write_outputs(rows, cases, outdir)

        with open(csv_path, encoding="ascii", newline="") as handle:
            parsed = list(csv.DictReader(handle))
        assert [tuple(row) for row in parsed] == \
            [runner.CSV_COLUMNS] * len(rows)
        assert [row["id"] for row in parsed] == \
            [case["id"] for case in cases]

        for case in cases:
            artifact_path = outdir / "artifacts" \
                / f"{case['id']}.json"
            artifact = json.loads(
                artifact_path.read_text(encoding="ascii"))
            assert set(artifact) == {"case", "metrics", "timing"}
            assert artifact["case"]["id"] == case["id"]
            assert set(artifact["metrics"]) == \
                set(runner.DETERMINISTIC_COLUMNS)
            assert set(artifact["timing"]) == \
                set(runner.VOLATILE_COLUMNS)

    def test_main_only_and_unknown_case(self, matrix, tmp_path,
                                        capsys):
        rc = runner.main(["--outdir", str(tmp_path / "o"),
                          "--only", "no_such_case"])
        assert rc == 2
        assert "unknown case" in capsys.readouterr().err
