"""Tests for the staged mapping pipeline engine.

Covers the stage-statistics contract (regions seeded/chained/aligned,
cache hit rate, per-stage time), the LRU region cache, the None-safe
strand tie-break helper, and the batch/sequential parity guarantee of
``SeGraM.map_batch``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.mapper import MappingResult, SeGraM, SeGraMConfig
from repro.core.pipeline import (
    STAGE_ORDER,
    CachedRegion,
    PipelineStats,
    RegionCache,
    best_of,
)
from repro.core.windows import WindowingConfig
from repro.io.gaf import result_to_gaf
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.reference import random_reference


CONFIG = SeGraMConfig(
    w=10, k=15, bucket_bits=12, error_rate=0.05,
    windowing=WindowingConfig(window_size=128, overlap=48, k=16),
    max_seeds_per_read=8,
)


def _noisy_reads(reference, count, rng, length=300, error=0.02):
    reads = []
    for i in range(count):
        start = rng.randrange(0, len(reference) - length - 1)
        sequence, _ = apply_errors(
            reference[start:start + length],
            ErrorModel.illumina(error), rng,
        )
        reads.append((f"read{i}", sequence))
    return reads


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(97)
    reference = random_reference(25_000, rng)
    reads = _noisy_reads(reference, 12, rng)
    return reference, reads


def _fresh_mapper(reference, **overrides):
    config = SeGraMConfig(
        w=CONFIG.w, k=CONFIG.k, bucket_bits=CONFIG.bucket_bits,
        error_rate=CONFIG.error_rate, windowing=CONFIG.windowing,
        max_seeds_per_read=CONFIG.max_seeds_per_read, **overrides,
    )
    return SeGraM.from_reference(reference, config=config,
                                 max_node_length=4_000)


def _result_key(result: MappingResult):
    return (result.read_name, result.mapped, result.distance,
            result.cigar, result.node_id, result.node_offset,
            result.path_nodes, result.linear_position, result.strand,
            result.regions_aligned)


class TestPipelineStats:
    def test_stage_counters_after_mapping(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        for name, sequence in reads[:4]:
            mapper.map_read(sequence, name)
        stats = mapper.pipeline.stats
        assert stats.reads == 4
        assert stats.reads_mapped == 4
        assert stats.regions_seeded > 0
        assert stats.regions_chained > 0
        assert stats.regions_aligned > 0
        assert stats.regions_chained <= stats.regions_seeded
        assert stats.regions_aligned <= stats.regions_chained
        assert stats.windows > 0
        assert tuple(stats.stages) == STAGE_ORDER
        seed, align = stats.stage("seed"), stats.stage("align")
        assert seed.items_in == 4
        assert seed.items_out == stats.regions_seeded
        assert align.items_in == stats.regions_chained
        assert align.items_out == stats.regions_aligned
        assert align.items_in == align.items_out + align.dropped
        for stage in stats.stages.values():
            assert stage.seconds >= 0.0
        # Aggregate seeding counters fold every read's stats together.
        assert stats.seeding.minimizer_count >= \
            stats.seeding.surviving_minimizers

    def test_stage_rows_and_summary(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        mapper.map_read(reads[0][1], reads[0][0])
        stats = mapper.pipeline.stats
        rows = stats.stage_rows()
        assert [row["stage"] for row in rows] == list(STAGE_ORDER)
        assert all({"in", "out", "dropped", "seconds"} <= set(row)
                   for row in rows)
        summary = "\n".join(stats.summary_lines())
        assert "seeded" in summary and "hit rate" in summary

    def test_merge_sums_counters(self):
        a, b = PipelineStats.empty(), PipelineStats.empty()
        a.reads, b.reads = 2, 3
        a.cache_hits, b.cache_hits = 1, 4
        a.stage("align").items_in = 5
        b.stage("align").items_in = 7
        b.stage("align").seconds = 0.5
        a.merge(b)
        assert a.reads == 5
        assert a.cache_hits == 5
        assert a.stage("align").items_in == 12
        assert a.stage("align").seconds == pytest.approx(0.5)

    def test_early_exit_reported_as_dropped(self, workload):
        reference, _ = workload
        mapper = _fresh_mapper(reference, early_exit_distance=0)
        read = reference[4_000:4_300]
        result = mapper.map_read(read, "exact")
        assert result.distance == 0
        stats = mapper.pipeline.stats
        assert stats.regions_aligned < stats.regions_chained
        assert stats.stage("align").dropped == \
            stats.regions_chained - stats.regions_aligned


class TestRegionCache:
    def test_repeat_read_hits_cache(self, workload):
        reference, _ = workload
        mapper = _fresh_mapper(reference)
        read = reference[6_000:6_400]
        first = mapper.map_read(read, "dup")
        stats = mapper.pipeline.stats
        # Node-range keys: even one read's overlapping seed regions
        # share entries, so the first pass may already hit.
        hits_after_first = stats.cache_hits
        misses_after_first = stats.cache_misses
        assert misses_after_first > 0
        second = mapper.map_read(read, "dup")
        # The duplicate read re-derives only warm node ranges.
        assert stats.cache_hits > hits_after_first
        assert stats.cache_misses == misses_after_first
        assert stats.cache_hit_rate > 0.0
        assert _result_key(first) == _result_key(second)

    def test_extract_node_range_matches_extract_region(self, workload):
        """The O(range) miss path derives the identical subgraph to
        the span-scan extraction for the range the key names."""
        reference, _ = workload
        mapper = _fresh_mapper(reference)
        graph = mapper.graph
        rng = random.Random(5)
        total = graph.total_sequence_length
        for _ in range(25):
            start = rng.randrange(0, total - 2)
            end = rng.randrange(start + 1,
                                min(total, start + 9_000) + 1)
            lo, hi = mapper.pipeline.node_range(start, end)
            by_span, ids_span = graph.extract_region(start, end)
            by_range, ids_range = graph.extract_node_range(lo, hi)
            assert ids_span == ids_range
            assert [by_span.sequence_of(n)
                    for n in range(by_span.node_count)] == \
                [by_range.sequence_of(n)
                 for n in range(by_range.node_count)]
            assert sorted(by_span.edges()) == sorted(by_range.edges())

    def test_node_range_key_shares_entries_across_spans(self, workload):
        """Two different spans selecting the same nodes share one
        cache entry (the pair-aware key: a mate an insert-length away
        usually lands in the same node range)."""
        reference, _ = workload
        mapper = _fresh_mapper(reference)
        pipe = mapper.pipeline
        lo, hi = pipe.node_range(6_000, 6_400)
        assert (lo, hi) == pipe.node_range(6_010, 6_390)
        mapper.map_read(reference[6_000:6_400], "left")
        misses = pipe.stats.cache_misses
        # A nearby (mate-like) read within the same nodes: all hits.
        mapper.map_read(reference[6_050:6_450], "right")
        assert pipe.stats.cache_misses == misses
        assert pipe.stats.cache_hits > 0

    def test_cache_disabled(self, workload):
        reference, _ = workload
        mapper = _fresh_mapper(reference, region_cache_size=0)
        read = reference[6_000:6_400]
        mapper.map_read(read, "dup")
        mapper.map_read(read, "dup")
        assert mapper.pipeline.stats.cache_hits == 0
        assert len(mapper.pipeline.cache) == 0

    def test_lru_eviction(self):
        cache = RegionCache(capacity=2)
        entries = {k: CachedRegion(lin=None, original_ids=[],
                                   offsets=[]) for k in "abc"}
        cache.store(("a",), entries["a"])
        cache.store(("b",), entries["b"])
        assert cache.lookup(("a",)) is entries["a"]  # refresh "a"
        cache.store(("c",), entries["c"])            # evicts "b"
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is entries["a"]
        assert cache.lookup(("c",)) is entries["c"]
        assert len(cache) == 2

    def test_zero_capacity_stores_nothing(self):
        cache = RegionCache(capacity=0)
        cache.store(("a",), CachedRegion(lin=None, original_ids=[],
                                         offsets=[]))
        assert len(cache) == 0
        assert cache.lookup(("a",)) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RegionCache(capacity=-1)


def _mapped(strand: str, distance: int | None) -> MappingResult:
    return MappingResult(read_name="r", read_length=100, mapped=True,
                         distance=distance, strand=strand)


def _unmapped(strand: str) -> MappingResult:
    return MappingResult(read_name="r", read_length=100, mapped=False,
                         strand=strand)


class TestBestOf:
    def test_no_reverse(self):
        forward = _mapped("+", 3)
        assert best_of(forward, None) is forward

    def test_unmapped_reverse_never_wins(self):
        forward = _unmapped("+")
        assert best_of(forward, _unmapped("-")) is forward

    def test_mapped_reverse_beats_unmapped_forward(self):
        reverse = _mapped("-", 9)
        assert best_of(_unmapped("+"), reverse) is reverse

    def test_lower_distance_wins(self):
        assert best_of(_mapped("+", 5), _mapped("-", 2)).strand == "-"
        assert best_of(_mapped("+", 1), _mapped("-", 2)).strand == "+"

    def test_forward_wins_ties(self):
        assert best_of(_mapped("+", 0), _mapped("-", 0)).strand == "+"
        assert best_of(_mapped("+", 7), _mapped("-", 7)).strand == "+"

    def test_none_distance_is_safe(self):
        # A mapped result with no distance loses to one with a real
        # distance — and never trips a None comparison.
        assert best_of(_mapped("+", None), _mapped("-", 4)).strand == "-"
        assert best_of(_mapped("+", 4), _mapped("-", None)).strand == "+"
        assert best_of(_mapped("+", None),
                       _mapped("-", None)).strand == "+"


class TestBatchParity:
    """`map_batch(reads, jobs=N)` must be bit-for-bit identical to a
    sequential `map_read` loop for every N, with and without the
    region cache."""

    @pytest.fixture(scope="class")
    def sequential(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        return [mapper.map_read(sequence, name)
                for name, sequence in reads]

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("cache_size", [0, 128])
    def test_parity(self, workload, sequential, jobs, cache_size):
        reference, reads = workload
        mapper = _fresh_mapper(reference,
                               region_cache_size=cache_size)
        batch = mapper.map_batch(reads, jobs=jobs)
        assert [_result_key(r) for r in batch] == \
            [_result_key(r) for r in sequential]

    def test_batch_merges_worker_stats(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        mapper.map_batch(reads, jobs=2)
        stats = mapper.stats
        assert stats.reads == len(reads)
        assert stats.reads_mapped > 0
        assert stats.regions_aligned > 0
        assert stats.stage("seed").items_in == len(reads)

    def test_map_reads_jobs_passthrough(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        results = mapper.map_reads(reads[:4], jobs=2)
        assert [r.read_name for r in results] == \
            [name for name, _ in reads[:4]]

    def test_empty_batch(self, workload):
        reference, _ = workload
        mapper = _fresh_mapper(reference)
        assert mapper.map_batch([], jobs=4) == []


class TestCoalescedParity:
    """``coalesce=True`` (the service's cross-read batched dispatch)
    must stay bit-for-bit identical to the per-read loop — same
    results for every jobs count, backend, and strand setting."""

    @pytest.fixture(scope="class")
    def sequential(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference)
        return [mapper.map_read(sequence, name)
                for name, sequence in reads]

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_parity(self, workload, sequential, jobs, backend):
        reference, reads = workload
        mapper = _fresh_mapper(reference, align_backend=backend)
        batch = mapper.map_batch(reads, jobs=jobs, coalesce=True)
        assert [_result_key(r) for r in batch] == \
            [_result_key(r) for r in sequential]

    def test_parity_both_strands(self, workload):
        reference, reads = workload
        plain = _fresh_mapper(reference, both_strands=True)
        coalesced = _fresh_mapper(reference, both_strands=True)
        assert [_result_key(r) for r in
                coalesced.map_batch(reads, coalesce=True)] == \
            [_result_key(r) for r in plain.map_batch(reads)]

    def test_coalesced_shares_kernel_dispatches(self, workload):
        reference, reads = workload
        per_read = _fresh_mapper(reference, align_backend="numpy")
        per_read.map_batch(reads)
        coalesced = _fresh_mapper(reference, align_backend="numpy")
        coalesced.map_batch(reads, coalesce=True)
        # Result-bearing counters unchanged; dispatch count shrinks.
        assert coalesced.stats.windows == per_read.stats.windows
        assert coalesced.stats.align_calls \
            < per_read.stats.align_calls

    def test_early_exit_falls_back_to_per_read(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference, early_exit_distance=1000)
        baseline = _fresh_mapper(reference, early_exit_distance=1000)
        assert [_result_key(r) for r in
                mapper.map_batch(reads, coalesce=True)] == \
            [_result_key(r) for r in baseline.map_batch(reads)]


def _counter_key(stats: PipelineStats):
    """Every pipeline counter except wall time."""
    return (
        stats.reads, stats.reads_mapped, stats.regions_seeded,
        stats.regions_chained, stats.regions_aligned,
        stats.cache_hits, stats.cache_misses, stats.windows,
        stats.rescues,
        tuple((name, s.items_in, s.items_out, s.dropped)
              for name, s in stats.stages.items()),
    )


class TestBackendParity:
    """`map_batch` over jobs x alignment backend: identical GAF
    records and identical `PipelineStats` counters (wall time
    excluded) — the bit-for-bit contract of the backend registry."""

    @pytest.fixture(scope="class")
    def per_backend(self, workload):
        reference, reads = workload
        outputs = {}
        for backend in ("python", "numpy"):
            mapper = _fresh_mapper(reference, align_backend=backend)
            results = mapper.map_batch(reads, jobs=1)
            gaf = [result_to_gaf(r, mapper.graph, seq)
                   for r, (_, seq) in zip(results, reads)]
            outputs[backend] = (results, gaf, mapper.stats)
        return outputs

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_gaf_records_identical(self, workload, per_backend,
                                   jobs, backend):
        reference, reads = workload
        mapper = _fresh_mapper(reference, align_backend=backend)
        results = mapper.map_batch(reads, jobs=jobs)
        baseline_results, baseline_gaf, _ = per_backend["python"]
        assert [_result_key(r) for r in results] == \
            [_result_key(r) for r in baseline_results]
        gaf = [result_to_gaf(r, mapper.graph, seq)
               for r, (_, seq) in zip(results, reads)]
        assert gaf == baseline_gaf

    def test_stats_counters_identical(self, per_backend):
        _, _, python_stats = per_backend["python"]
        _, _, numpy_stats = per_backend["numpy"]
        assert _counter_key(python_stats) == _counter_key(numpy_stats)
        assert python_stats.backend == "python"
        assert numpy_stats.backend == "numpy"

    def test_backend_label_survives_batch_merge(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference, align_backend="numpy")
        mapper.map_batch(reads[:4], jobs=2)
        assert mapper.stats.backend == "numpy"
        assert "backend: numpy" in "\n".join(mapper.stats.summary_lines())


class TestBatchedAlignPath:
    """The collect-then-batch align path and its dispatch counters.

    ``align_calls`` / ``align_windows_batched`` are deliberately NOT
    part of :func:`_counter_key` — they describe how a backend chose
    to dispatch work, which differs across backends by design, while
    every result-bearing counter must stay identical.
    """

    def test_batched_path_matches_sequential_path(self, workload):
        """``early_exit_distance=-1`` drives the legacy one-window-
        at-a-time region loop without ever exiting early; the default
        collect-then-batch path must produce identical mappings."""
        reference, reads = workload
        batched = _fresh_mapper(reference, align_backend="numpy")
        sequential = _fresh_mapper(reference, align_backend="numpy",
                                   early_exit_distance=-1)
        fast = batched.map_batch(reads, jobs=1)
        slow = sequential.map_batch(reads, jobs=1)
        assert [_result_key(r) for r in fast] == \
            [_result_key(r) for r in slow]
        # The sequential path never reaches the batched entry point.
        assert sequential.stats.align_windows_batched == 0
        assert batched.stats.align_windows_batched > 0

    @pytest.mark.parametrize("backend,expect_batched",
                             [("numpy", True), ("python", False)])
    def test_dispatch_counters_per_backend(self, workload, backend,
                                           expect_batched):
        reference, reads = workload
        mapper = _fresh_mapper(reference, align_backend=backend)
        mapper.map_batch(reads, jobs=1)
        stats = mapper.stats
        assert stats.align_calls > 0
        if expect_batched:
            # Batching must actually reduce dispatches.
            assert stats.align_windows_batched > 0
            assert stats.align_calls < stats.windows
        else:
            assert stats.align_windows_batched == 0
            assert stats.align_calls >= stats.windows

    def test_counters_surface_in_rows_and_summary(self, workload):
        reference, reads = workload
        mapper = _fresh_mapper(reference, align_backend="numpy")
        mapper.map_batch(reads[:4], jobs=1)
        stats = mapper.stats
        rows = {row["stage"]: row for row in stats.stage_rows()}
        assert rows["align"]["calls"] == stats.align_calls
        assert rows["align"]["batched"] == stats.align_windows_batched
        assert rows["seed"]["calls"] is None
        assert rows["seed"]["batched"] is None
        summary = "\n".join(stats.summary_lines())
        assert f"{stats.align_calls} kernel dispatches" in summary
        assert f"({stats.align_windows_batched} windows batched" \
            in summary

    def test_dispatch_counters_merge(self):
        merged = PipelineStats()
        part = PipelineStats()
        part.align_calls = 3
        part.align_windows_batched = 7
        merged.merge(part)
        merged.merge(part)
        assert merged.align_calls == 6
        assert merged.align_windows_batched == 14
