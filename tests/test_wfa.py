"""Tests for the wavefront aligner (WFA)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_linear import edit_distance, semiglobal_distance
from repro.align.wfa import wfa_edit_distance, wfa_fitting_distance

dna = st.text(alphabet="ACGT", min_size=0, max_size=60)
read_strategy = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestGlobal:
    def test_identical(self):
        assert wfa_edit_distance("ACGT", "ACGT") == 0

    def test_known_cases(self):
        assert wfa_edit_distance("ACGT", "ACCT") == 1
        assert wfa_edit_distance("ACGT", "AGT") == 1
        assert wfa_edit_distance("ACGT", "") == 4
        assert wfa_edit_distance("", "") == 0

    def test_max_score_cutoff(self):
        assert wfa_edit_distance("AAAA", "TTTT", max_score=2) is None
        assert wfa_edit_distance("AAAA", "TTTT", max_score=4) == 4

    @settings(max_examples=250, deadline=None)
    @given(dna, dna)
    def test_matches_dp(self, a, b):
        assert wfa_edit_distance(a, b) == edit_distance(a, b)

    @settings(max_examples=80, deadline=None)
    @given(dna, dna, st.integers(min_value=0, max_value=10))
    def test_threshold_semantics(self, a, b, max_score):
        truth = edit_distance(a, b)
        result = wfa_edit_distance(a, b, max_score=max_score)
        if truth <= max_score:
            assert result == truth
        else:
            assert result is None


class TestFitting:
    def test_exact_substring(self):
        assert wfa_fitting_distance("AAACGTAAA", "ACGT") == 0

    def test_empty_reference(self):
        assert wfa_fitting_distance("", "ACGT") == 4

    def test_empty_read_rejected(self):
        with pytest.raises(ValueError):
            wfa_fitting_distance("ACGT", "")

    @settings(max_examples=250, deadline=None)
    @given(dna, read_strategy)
    def test_matches_dp(self, reference, read):
        truth, _ = semiglobal_distance(reference, read)
        assert wfa_fitting_distance(reference, read) == truth

    @settings(max_examples=80, deadline=None)
    @given(dna, read_strategy, st.integers(min_value=0, max_value=6))
    def test_threshold_semantics(self, reference, read, max_score):
        truth, _ = semiglobal_distance(reference, read)
        result = wfa_fitting_distance(reference, read,
                                      max_score=max_score)
        if truth <= max_score:
            assert result == truth
        else:
            assert result is None

    def test_wavefront_work_scales_with_score_not_length(self):
        """The WFA selling point: near-identical sequences align in
        time proportional to the score, independent of length."""
        import time
        base = "ACGT" * 2_000
        noisy = base[:3_000] + "T" + base[3_000:]  # one insertion
        t0 = time.perf_counter()
        assert wfa_edit_distance(base, noisy) == 1
        fast = time.perf_counter() - t0
        # Even a generous bound demonstrates the point: 8 kbp global
        # alignment at distance 1 completes in well under a second.
        assert fast < 1.0
