"""End-to-end tests of the command-line interface.

These are the integration tests of the whole pipeline: FASTA + VCF on
disk -> construct -> GFA -> index/stats, and FASTA + reads -> map ->
GAF/SAM, all through the public CLI.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.graph.gfa import read_gfa
from repro.io.fasta import FastaRecord, FastqRecord, write_fasta, \
    write_fastq
from repro.io.gaf import read_gaf
from repro.io.sam import read_sam
from repro.io.vcf import VcfRecord, write_vcf
from repro.sim.reference import random_reference


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    rng = random.Random(5)
    reference = random_reference(8_000, rng)
    write_fasta(root / "ref.fa", [FastaRecord("chr1", reference)])
    snp_pos = 500
    alt = "G" if reference[snp_pos] != "G" else "C"
    write_vcf(root / "vars.vcf", [
        VcfRecord("chr1", snp_pos + 1, reference[snp_pos], alt),
        VcfRecord("chr1", 1_001,
                  reference[1_000:1_004], reference[1_000]),
    ])
    reads = [
        FastqRecord(f"read{i}",
                    reference[i * 1_500:i * 1_500 + 300],
                    "I" * 300)
        for i in range(1, 4)
    ]
    write_fastq(root / "reads.fq", reads)
    return root, reference, alt, snp_pos


class TestConstruct:
    def test_builds_gfa(self, workspace, capsys):
        root, reference, _, _ = workspace
        code = main([
            "construct", "--reference", str(root / "ref.fa"),
            "--vcf", str(root / "vars.vcf"),
            "--output", str(root / "graph.gfa"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        graph = read_gfa(root / "graph.gfa")
        assert graph.total_sequence_length > len(reference)  # alt node

    def test_without_vcf_linear_graph(self, workspace, capsys):
        root, reference, _, _ = workspace
        code = main([
            "construct", "--reference", str(root / "ref.fa"),
            "--output", str(root / "linear.gfa"),
            "--max-node-length", "1000",
        ])
        assert code == 0
        graph = read_gfa(root / "linear.gfa")
        assert graph.total_sequence_length == len(reference)
        assert graph.node_count == 8


class TestIndexAndStats:
    def test_index_prints_levels(self, workspace, capsys):
        root, *_ = workspace
        main(["construct", "--reference", str(root / "ref.fa"),
              "--vcf", str(root / "vars.vcf"),
              "--output", str(root / "graph.gfa")])
        capsys.readouterr()
        code = main(["index", "--graph", str(root / "graph.gfa")])
        assert code == 0
        out = capsys.readouterr().out
        assert "buckets" in out
        assert "minimizers" in out

    def test_stats_prints_hop_profile(self, workspace, capsys):
        root, *_ = workspace
        main(["construct", "--reference", str(root / "ref.fa"),
              "--vcf", str(root / "vars.vcf"),
              "--output", str(root / "graph.gfa")])
        capsys.readouterr()
        code = main(["stats", "--graph", str(root / "graph.gfa")])
        assert code == 0
        out = capsys.readouterr().out
        assert "hop coverage @ limit 12" in out


class TestMap:
    def test_map_to_gaf(self, workspace, capsys):
        root, *_ = workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--vcf", str(root / "vars.vcf"),
            "--reads", str(root / "reads.fq"),
            "--output", str(root / "out.gaf"),
            "--error-rate", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mapped 3/3" in out
        records = read_gaf(root / "out.gaf")
        assert len(records) == 3
        assert all(r.matches == r.query_length for r in records)

    def test_map_to_sam(self, workspace, capsys):
        root, reference, _, _ = workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "reads.fq"),
            "--output", str(root / "out.sam"),
            "--format", "sam",
            "--error-rate", "0.02",
        ])
        assert code == 0
        records = read_sam(root / "out.sam")
        assert len(records) == 3
        for i, record in enumerate(records, start=1):
            assert record.pos == i * 1_500 + 1  # exact origin, 1-based
            assert record.edit_distance == 0

    def test_map_fasta_reads(self, workspace, capsys, tmp_path):
        root, reference, _, _ = workspace
        write_fasta(tmp_path / "reads.fa",
                    [FastaRecord("fa_read", reference[2_000:2_200])])
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(tmp_path / "reads.fa"),
            "--output", str(tmp_path / "out.gaf"),
        ])
        assert code == 0
        assert len(read_gaf(tmp_path / "out.gaf")) == 1

    def test_map_reports_pipeline_stats(self, workspace, capsys,
                                        tmp_path):
        root, *_ = workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "reads.fq"),
            "--output", str(tmp_path / "out.gaf"),
            "--error-rate", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline stages" in out
        for stage in ("seed", "filter", "extract", "align", "select"):
            assert stage in out
        assert "seeded" in out
        assert "hit rate" in out

    def test_map_pipeline_flags(self, workspace, capsys, tmp_path):
        """--jobs/--cache-size/--bucket-bits/--chaining/
        --early-exit-distance all reach the mapper and results stay
        identical to the default sequential run."""
        root, *_ = workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "reads.fq"),
            "--output", str(tmp_path / "default.gaf"),
            "--error-rate", "0.02",
        ])
        assert code == 0
        capsys.readouterr()
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "reads.fq"),
            "--output", str(tmp_path / "tuned.gaf"),
            "--error-rate", "0.02",
            "--jobs", "2", "--cache-size", "32",
            "--bucket-bits", "12",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mapped 3/3" in out
        assert "jobs=2" in out
        default = [(r.query_name, r.path, r.matches)
                   for r in read_gaf(tmp_path / "default.gaf")]
        tuned = [(r.query_name, r.path, r.matches)
                 for r in read_gaf(tmp_path / "tuned.gaf")]
        assert tuned == default

    def test_map_chaining_and_early_exit(self, workspace, capsys,
                                         tmp_path):
        root, *_ = workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "reads.fq"),
            "--output", str(tmp_path / "chained.gaf"),
            "--error-rate", "0.02",
            "--chaining", "--early-exit-distance", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mapped 3/3" in out
        assert len(read_gaf(tmp_path / "chained.gaf")) == 3


class TestMapPaired:
    @pytest.fixture(scope="class")
    def paired_workspace(self, tmp_path_factory):
        from repro.sim.pairedend import (
            PairedEndProfile,
            simulate_fragments,
        )

        root = tmp_path_factory.mktemp("cli_paired")
        rng = random.Random(0xCAFE)
        reference = random_reference(10_000, rng)
        write_fasta(root / "ref.fa", [FastaRecord("chr1", reference)])
        profile = PairedEndProfile.illumina(
            read_length=100, error_rate=0.01,
            insert_mean=350.0, insert_std=50.0,
        )
        fragments = simulate_fragments(reference, 8, rng, profile)
        for index, path in ((1, "r1.fq"), (2, "r2.fq")):
            write_fastq(root / path, [
                FastqRecord(getattr(f, f"mate{index}").name,
                            getattr(f, f"mate{index}").sequence,
                            "I" * len(getattr(f,
                                              f"mate{index}").sequence))
                for f in fragments
            ])
        return root, reference, fragments

    def test_map_paired_smoke(self, paired_workspace, capsys):
        from repro.io.sam import validate_sam_pair

        root, _, fragments = paired_workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "r1.fq"),
            "--paired", str(root / "r2.fq"),
            "--output", str(root / "out.sam"),
            "--format", "sam",
            "--insert-mean", "350", "--insert-std", "50",
            "--error-rate", "0.05",
            "--early-exit-distance", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "proper pairs" in out
        assert "mate rescue" in out
        records = read_sam(root / "out.sam")
        assert len(records) == 2 * len(fragments)
        for rec1, rec2 in zip(records[::2], records[1::2]):
            assert rec1.is_paired and rec2.is_paired
            assert rec1.is_first_in_pair and rec2.is_second_in_pair
            validate_sam_pair(rec1, rec2)

    def test_paired_rescue_flag_and_jobs(self, paired_workspace,
                                         capsys):
        root, _, fragments = paired_workspace
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(root / "r1.fq"),
            "--paired", str(root / "r2.fq"),
            "--output", str(root / "out2.sam"),
            "--format", "sam",
            "--no-mate-rescue", "--jobs", "2",
            "--error-rate", "0.05",
            "--early-exit-distance", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "0 hits / 0 attempts" in out
        assert len(read_sam(root / "out2.sam")) == 2 * len(fragments)


class TestStreamingMap:
    """Streamed input (--input-mode stream, gzip, any chunk size)
    must produce byte-identical output to the fully materialized
    path, across alignment backends and worker counts."""

    @pytest.fixture(scope="class")
    def stream_workspace(self, tmp_path_factory):
        import gzip

        from repro.sim.pairedend import (
            PairedEndProfile,
            simulate_fragments,
        )

        root = tmp_path_factory.mktemp("cli_stream")
        rng = random.Random(0xFEED)
        reference = random_reference(8_000, rng)
        write_fasta(root / "ref.fa", [FastaRecord("chr1", reference)])

        reads = [
            FastqRecord(f"sr{i}",
                        reference[start:start + 200], "I" * 200)
            for i, start in enumerate(range(200, 6_200, 750))
        ]
        write_fastq(root / "reads.fq", reads)
        with gzip.open(root / "reads.fq.gz", "wt",
                       encoding="ascii") as handle:
            write_fastq(handle, reads)

        profile = PairedEndProfile.illumina(
            read_length=100, error_rate=0.0,
            insert_mean=350.0, insert_std=50.0,
        )
        fragments = simulate_fragments(reference, 6, rng, profile)
        for index, name in ((1, "r1.fq"), (2, "r2.fq")):
            mates = [getattr(f, f"mate{index}") for f in fragments]
            records = [FastqRecord(m.name, m.sequence,
                                   "I" * len(m.sequence))
                       for m in mates]
            write_fastq(root / name, records)
            with gzip.open(root / f"{name}.gz", "wt",
                           encoding="ascii") as handle:
                write_fastq(handle, records)
        return root, reads, fragments

    def _map(self, root, out, reads, mode, backend, jobs,
             extra=()):
        code = main([
            "map", "--reference", str(root / "ref.fa"),
            "--reads", str(reads),
            "--output", str(out),
            "--align-backend", backend, "--jobs", str(jobs),
            "--input-mode", mode, "--chunk-size", "3",
            "--error-rate", "0.02",
            *extra,
        ])
        assert code == 0
        return out.read_bytes()

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_single_end_modes_byte_identical(self, stream_workspace,
                                             capsys, tmp_path,
                                             backend, jobs):
        root, reads, _ = stream_workspace
        for fmt, suffix in (("sam", ".sam"), ("gaf", ".gaf")):
            extra = ("--format", fmt)
            mem = self._map(root, tmp_path / f"mem{suffix}",
                            root / "reads.fq", "mem",
                            backend, jobs, extra)
            streamed = self._map(root, tmp_path / f"str{suffix}",
                                 root / "reads.fq", "stream",
                                 backend, jobs, extra)
            gz = self._map(root, tmp_path / f"gz{suffix}",
                           root / "reads.fq.gz", "stream",
                           backend, jobs, extra)
            assert mem == streamed == gz
            assert len(mem) > 0
        out = capsys.readouterr().out
        assert f"mapped {len(reads)}/{len(reads)}" in out

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_paired_modes_byte_identical(self, stream_workspace,
                                         capsys, tmp_path, jobs):
        root, _, fragments = stream_workspace

        def run(out, r2, mode):
            code = main([
                "map", "--reference", str(root / "ref.fa"),
                "--reads", str(root / "r1.fq"),
                "--paired", str(r2),
                "--output", str(out),
                "--jobs", str(jobs),
                "--input-mode", mode, "--chunk-size", "2",
                "--error-rate", "0.05",
                "--early-exit-distance", "6",
            ])
            assert code == 0
            return out.read_bytes()

        mem = run(tmp_path / "mem.sam", root / "r2.fq", "mem")
        streamed = run(tmp_path / "str.sam", root / "r2.fq",
                       "stream")
        gz = run(tmp_path / "gz.sam", root / "r2.fq.gz", "stream")
        assert mem == streamed == gz
        assert len(read_sam(tmp_path / "mem.sam")) == \
            2 * len(fragments)

    def test_sort_sam_orders_by_coordinate(self, stream_workspace,
                                           capsys, tmp_path):
        root, reads, _ = stream_workspace
        data = self._map(root, tmp_path / "sorted.sam",
                         root / "reads.fq", "stream", "python", 1,
                         ("--format", "sam", "--sort-sam"))
        header = data.decode("ascii").splitlines()[0]
        assert "SO:coordinate" in header
        records = read_sam(tmp_path / "sorted.sam")
        keys = [(r.rname, r.pos) for r in records]
        assert keys == sorted(keys)
        assert len(records) == len(reads)

    def test_qualified_paths_round_trip(self, stream_workspace,
                                        capsys, tmp_path):
        root, reads, _ = stream_workspace
        data = self._map(root, tmp_path / "q.gaf",
                         root / "reads.fq", "stream", "python", 1,
                         ("--format", "gaf", "--qualified-paths"))
        assert b">chr1#" in data
        records = read_gaf(tmp_path / "q.gaf")
        assert len(records) == len(reads)
        for record in records:
            assert record.segments
            assert all(s.startswith("chr1#")
                       for s in record.segments)

    def test_stream_flag_validation(self, stream_workspace,
                                    tmp_path):
        root, *_ = stream_workspace
        base = ["map", "--reference", str(root / "ref.fa"),
                "--reads", str(root / "reads.fq"),
                "--output", str(tmp_path / "x.out")]
        with pytest.raises(SystemExit, match="--chunk-size"):
            main([*base, "--chunk-size", "0"])
        with pytest.raises(SystemExit,
                           match="--sort-sam requires SAM"):
            main([*base, "--sort-sam"])
        with pytest.raises(SystemExit, match="--qualified-paths"):
            main([*base, "--format", "sam", "--qualified-paths"])


class TestModel:
    def test_workload_report(self, capsys):
        code = main(["model", "--workload", "pacbio"])
        assert code == 0
        out = capsys.readouterr().out
        assert "35.9 us" in out
        assert "reads/s" in out

    def test_table1(self, capsys):
        code = main(["model", "--table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hop queue" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestIndexArtifact:
    """``repro index build`` / ``inspect`` and ``repro map --index``."""

    def test_build_then_map_matches_in_memory(self, workspace,
                                              capsys):
        root, *_ = workspace
        code = main([
            "index", "build", str(root / "ref.fa"),
            "--vcf", str(root / "vars.vcf"),
            "-o", str(root / "ref.sgidx"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "minimizers" in out
        main([
            "map", "--reference", str(root / "ref.fa"),
            "--vcf", str(root / "vars.vcf"),
            "--reads", str(root / "reads.fq"),
            "--output", str(root / "mem.sam"), "--format", "sam",
        ])
        code = main([
            "map", "--index", str(root / "ref.sgidx"),
            "--reads", str(root / "reads.fq"),
            "--output", str(root / "idx.sam"), "--format", "sam",
        ])
        assert code == 0
        assert (root / "idx.sam").read_bytes() == \
            (root / "mem.sam").read_bytes()

    def test_artifact_autodetected_as_reference(self, workspace,
                                                capsys):
        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "--vcf", str(root / "vars.vcf"),
              "-o", str(root / "auto.sgidx")])
        capsys.readouterr()
        code = main([
            "map", "--reference", str(root / "auto.sgidx"),
            "--reads", str(root / "reads.fq"),
            "--output", str(root / "auto.gaf"),
        ])
        assert code == 0
        assert "mapped 3/3" in capsys.readouterr().out

    def test_persistent_pool_matches_fork(self, workspace, capsys):
        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "--vcf", str(root / "vars.vcf"),
              "-o", str(root / "pool.sgidx")])
        for mode, name in (("fork", "fork.sam"),
                           ("persistent", "pool.sam")):
            code = main([
                "map", "--index", str(root / "pool.sgidx"),
                "--reads", str(root / "reads.fq"),
                "--output", str(root / name), "--format", "sam",
                "--jobs", "2", "--pool", mode,
            ])
            assert code == 0
        assert (root / "pool.sam").read_bytes() == \
            (root / "fork.sam").read_bytes()

    def test_build_from_gfa_and_parallel_jobs(self, workspace,
                                              capsys, tmp_path):
        root, *_ = workspace
        main(["construct", "--reference", str(root / "ref.fa"),
              "--vcf", str(root / "vars.vcf"),
              "--output", str(tmp_path / "graph.gfa")])
        code = main([
            "index", "build", str(tmp_path / "graph.gfa"),
            "-o", str(tmp_path / "graph.sgidx"), "--jobs", "2",
        ])
        assert code == 0
        capsys.readouterr()
        code = main([
            "map", "--index", str(tmp_path / "graph.sgidx"),
            "--reads", str(root / "reads.fq"),
            "--output", str(tmp_path / "graph.gaf"),
        ])
        assert code == 0
        assert "mapped 3/3" in capsys.readouterr().out

    def test_inspect_reports_three_levels(self, workspace, capsys):
        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "-o", str(root / "inspect.sgidx")])
        capsys.readouterr()
        code = main(["index", "inspect", str(root / "inspect.sgidx")])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper Fig. 6" in out
        assert "buckets" in out and "locations" in out
        assert "chr1" in out

    def test_inspect_rejects_corrupt_artifact(self, workspace,
                                              tmp_path):
        bad = tmp_path / "bad.sgidx"
        bad.write_bytes(b"not an artifact at all, far too short")
        with pytest.raises(SystemExit, match="error"):
            main(["index", "inspect", str(bad)])

    def test_map_requires_reference_or_index(self, workspace):
        root, *_ = workspace
        with pytest.raises(SystemExit,
                           match="--reference or --index"):
            main(["map", "--reads", str(root / "reads.fq"),
                  "--output", str(root / "x.gaf")])

    def test_vcf_with_index_rejected(self, workspace):
        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "-o", str(root / "novcf.sgidx")])
        with pytest.raises(SystemExit, match="--vcf"):
            main(["map", "--index", str(root / "novcf.sgidx"),
                  "--vcf", str(root / "vars.vcf"),
                  "--reads", str(root / "reads.fq"),
                  "--output", str(root / "x.gaf")])

    def test_persistent_pool_requires_index(self, workspace):
        root, *_ = workspace
        with pytest.raises(SystemExit, match="persistent"):
            main(["map", "--reference", str(root / "ref.fa"),
                  "--reads", str(root / "reads.fq"),
                  "--output", str(root / "x.gaf"),
                  "--pool", "persistent"])

    def test_index_without_subcommand_or_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["index"])


class TestServeClient:
    """``repro serve`` + ``repro client``: the daemon through the CLI.

    The daemon runs in the test's main thread (``serve`` installs
    signal handlers, which only works there); a helper thread plays
    the operator, driving ``repro client`` against the unix socket
    and finally requesting shutdown so ``serve`` returns.
    """

    def test_serve_client_sam_byte_identical(self, workspace,
                                             capsys, tmp_path):
        import signal
        import threading
        import time as time_mod

        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "-o", str(tmp_path / "serve.sgidx")])
        main(["map", "--index", str(tmp_path / "serve.sgidx"),
              "--reads", str(root / "reads.fq"),
              "--output", str(tmp_path / "offline.sam"),
              "--format", "sam"])
        socket_path = tmp_path / "svc.sock"
        codes = {}

        def operator():
            for _ in range(200):
                if socket_path.exists():
                    break
                time_mod.sleep(0.05)
            codes["ping"] = main(
                ["client", "ping", "--socket", str(socket_path)])
            codes["map"] = main(
                ["client", "map", "--socket", str(socket_path),
                 "--reads", str(root / "reads.fq"),
                 "--output", str(tmp_path / "served.sam")])
            codes["batch"] = main(
                ["client", "map", "--socket", str(socket_path),
                 "--reads", str(root / "reads.fq"), "--batch",
                 "--output", str(tmp_path / "served_batch.sam")])
            codes["stats"] = main(
                ["client", "stats", "--socket", str(socket_path)])
            codes["shutdown"] = main(
                ["client", "shutdown", "--socket",
                 str(socket_path)])

        handlers_before = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        thread = threading.Thread(target=operator)
        thread.start()
        code = main(["serve", "--index",
                     str(tmp_path / "serve.sgidx"),
                     "--socket", str(socket_path),
                     "--batch-window-ms", "3"])
        thread.join()
        assert code == 0
        # serve must restore the process signal dispositions: its
        # handler leaking into this (embedding) process would also be
        # inherited by every later fork, where it swallows the
        # SIGTERM that Pool.terminate() relies on.
        for signum, handler in handlers_before.items():
            assert signal.getsignal(signum) is handler
        assert codes == {"ping": 0, "map": 0, "batch": 0,
                         "stats": 0, "shutdown": 0}
        offline = (tmp_path / "offline.sam").read_bytes()
        assert (tmp_path / "served.sam").read_bytes() == offline
        assert (tmp_path / "served_batch.sam").read_bytes() == offline
        out = capsys.readouterr().out
        assert "serving" in out and "stopped after" in out

    def test_serve_requires_endpoint(self, workspace, tmp_path):
        root, *_ = workspace
        main(["index", "build", str(root / "ref.fa"),
              "-o", str(tmp_path / "ep.sgidx")])
        with pytest.raises(SystemExit, match="--port or --socket"):
            main(["serve", "--index", str(tmp_path / "ep.sgidx")])
        with pytest.raises(SystemExit, match="exclusive"):
            main(["serve", "--index", str(tmp_path / "ep.sgidx"),
                  "--port", "0", "--socket",
                  str(tmp_path / "x.sock")])

    def test_client_requires_endpoint(self):
        with pytest.raises(SystemExit, match="--port or --socket"):
            main(["client", "ping"])

    def test_client_unreachable_daemon(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["client", "ping", "--socket",
                  str(tmp_path / "nowhere.sock")])
