"""Tests for <w,k>-minimizer extraction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.minimizer import (
    brute_force_minimizers,
    expected_density,
    invertible_hash,
    kmer_at,
    minimizers,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=120)
params = st.tuples(
    dna,
    st.integers(min_value=1, max_value=12),   # w
    st.integers(min_value=1, max_value=8),    # k
)


class TestPaperExample:
    def test_fig8_lexicographic_minimizer(self):
        # Paper Fig. 8: sequence AGTAGCA, <5,3>-minimizers, first window
        # holds AGT, GTA, TAG, AGC, GCA; lexicographically smallest is
        # AGC at position 3.
        found = minimizers("AGTAGCA", w=5, k=3, scoring="lex")
        assert len(found) == 1
        assert found[0].position == 3
        assert kmer_at("AGTAGCA", 3, 3) == found[0].kmer


class TestSingleLoopEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(params)
    def test_matches_brute_force(self, args):
        sequence, w, k = args
        fast = minimizers(sequence, w=w, k=k)
        slow = brute_force_minimizers(sequence, w=w, k=k)
        assert fast == slow

    @settings(max_examples=100, deadline=None)
    @given(params)
    def test_matches_brute_force_lex(self, args):
        sequence, w, k = args
        assert minimizers(sequence, w=w, k=k, scoring="lex") == \
            brute_force_minimizers(sequence, w=w, k=k, scoring="lex")


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(params)
    def test_minimizers_sorted_and_unique(self, args):
        sequence, w, k = args
        found = minimizers(sequence, w=w, k=k)
        positions = [m.position for m in found]
        assert positions == sorted(set(positions))

    @settings(max_examples=100, deadline=None)
    @given(params)
    def test_every_window_contains_a_minimizer(self, args):
        sequence, w, k = args
        found = minimizers(sequence, w=w, k=k)
        num_kmers = len(sequence) - k + 1
        if num_kmers < 1:
            assert found == []
            return
        positions = {m.position for m in found}
        for start in range(max(1, num_kmers - w + 1)):
            window = set(range(start, min(start + w, num_kmers)))
            assert window & positions, f"window at {start} uncovered"

    def test_shared_substring_yields_shared_minimizer(self):
        # Minimizer guarantee: two sequences sharing an exact match of
        # >= w+k-1 bases share a minimizer (paper Section 6).
        rng = random.Random(5)
        core = "".join(rng.choice("ACGT") for _ in range(40))
        left = "".join(rng.choice("ACGT") for _ in range(20)) + core
        right = core + "".join(rng.choice("ACGT") for _ in range(20))
        w, k = 8, 10
        left_kmers = {m.kmer for m in minimizers(left, w=w, k=k)}
        right_kmers = {m.kmer for m in minimizers(right, w=w, k=k)}
        assert left_kmers & right_kmers

    def test_sequence_shorter_than_k(self):
        assert minimizers("ACG", w=4, k=5) == []

    def test_sequence_shorter_than_window(self):
        # Fewer than w k-mers: minimum over what exists.
        found = minimizers("ACGTA", w=10, k=3)
        assert len(found) == 1

    def test_w1_selects_every_kmer(self):
        sequence = "ACGTACGTAG"
        found = minimizers(sequence, w=1, k=3)
        assert len(found) == len(sequence) - 3 + 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            minimizers("ACGT", w=0, k=3)
        with pytest.raises(ValueError):
            minimizers("ACGT", w=2, k=0)
        with pytest.raises(ValueError):
            minimizers("ACGT", w=2, k=3, scoring="nope")


class TestHash:
    def test_invertible_hash_is_bijective_small(self):
        bits = 8
        images = {invertible_hash(x, bits) for x in range(1 << bits)}
        assert len(images) == 1 << bits

    def test_hash_stays_in_range(self):
        for x in [0, 1, 123456]:
            assert 0 <= invertible_hash(x, 30) < (1 << 30)


class TestDensity:
    def test_expected_density_formula(self):
        # Paper Section 6: index shrinks by a factor of 2/(w+1).
        assert expected_density(9) == pytest.approx(0.2)

    def test_observed_density_close_to_expected(self):
        rng = random.Random(11)
        sequence = "".join(rng.choice("ACGT") for _ in range(20_000))
        w, k = 9, 15
        found = minimizers(sequence, w=w, k=k)
        density = len(found) / (len(sequence) - k + 1)
        assert density == pytest.approx(expected_density(w), rel=0.15)


from repro import seq


class TestAmbiguousBases:
    """K-mers containing N are skipped (the policy in repro.seq)."""

    def test_n_kmers_never_selected(self):
        sequence = "ACGTACGTACNGTACGTACGTACG"
        for minimizer in minimizers(sequence, w=4, k=5):
            kmer = sequence[minimizer.position:minimizer.position + 5]
            assert "N" not in kmer

    def test_matches_brute_force_with_n(self):
        rng = random.Random(404)
        bases = list(seq.random_sequence(300, rng))
        for _ in range(12):
            bases[rng.randrange(len(bases))] = "N"
        sequence = "".join(bases)
        assert minimizers(sequence, w=8, k=9) == \
            brute_force_minimizers(sequence, w=8, k=9)

    def test_all_n_sequence_has_no_minimizers(self):
        assert minimizers("N" * 50, w=5, k=9) == []

    def test_garbage_character_still_rejected(self):
        with pytest.raises(seq.InvalidBaseError):
            minimizers("ACGTXACGTACGTACGT", w=3, k=5)
