"""Tests for banded fitting alignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banded import banded_distance
from repro.align.dp_linear import semiglobal_distance

dna = st.text(alphabet="ACGT", min_size=1, max_size=50)
pattern_strategy = st.text(alphabet="ACGT", min_size=1, max_size=20)


class TestBanded:
    def test_exact_match_on_diagonal(self):
        assert banded_distance("AAACGTAAA", "ACGT", k=1,
                               diagonal=2) == 0

    def test_mismatch_costs_one(self):
        assert banded_distance("AAACCTAAA", "ACGT", k=2,
                               diagonal=2) == 1

    def test_true_alignment_outside_band_missed(self):
        # The occurrence sits at diagonal 10; with hint 0 and k=2 the
        # band never reaches it.
        reference = "T" * 10 + "ACGT" + "T" * 10
        in_band = banded_distance(reference, "ACGT", k=2, diagonal=10)
        out_of_band = banded_distance(reference, "ACGT", k=2,
                                      diagonal=0)
        assert in_band == 0
        assert out_of_band is None or out_of_band > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            banded_distance("ACGT", "", k=2)
        with pytest.raises(ValueError):
            banded_distance("ACGT", "A", k=-1)

    @settings(max_examples=200, deadline=None)
    @given(dna, pattern_strategy)
    def test_wide_band_matches_full_dp(self, reference, read):
        """With the band covering every diagonal the result equals the
        unbanded fitting distance (when within threshold)."""
        dp, _ = semiglobal_distance(reference, read)
        k = len(reference) + len(read)
        result = banded_distance(reference, read, k=k, diagonal=0)
        assert result == dp

    @settings(max_examples=150, deadline=None)
    @given(dna, pattern_strategy,
           st.integers(min_value=0, max_value=8))
    def test_band_never_beats_full_dp(self, reference, read, k):
        """The banded distance is an upper bound of the true fitting
        distance whenever it reports one."""
        dp, _ = semiglobal_distance(reference, read)
        result = banded_distance(reference, read, k=k, diagonal=0)
        if result is not None:
            assert result >= dp
            assert result <= k

    @settings(max_examples=100, deadline=None)
    @given(dna, st.integers(min_value=0, max_value=30),
           st.integers(min_value=1, max_value=12))
    def test_seed_hint_finds_planted_occurrence(self, flank, offset,
                                                length):
        """A read planted at a known diagonal is always found with a
        small band anchored there."""
        read = "ACGTTGCA"[:max(4, length % 8 + 4)]
        reference = flank[:offset] + read + flank
        result = banded_distance(reference, read, k=2,
                                 diagonal=min(offset, len(flank)))
        assert result == 0
