"""The documentation checker (``tools/check_docs.py``).

Unit-tests the markdown block/link extraction on synthetic files,
then runs the real check over the repo's ``docs/`` tree — executing
every ``# runnable`` example and resolving every intra-repo link —
so documentation rot fails tier-1, not just the CI ``docs-check``
job.
"""

from __future__ import annotations

import importlib.util
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(_spec)
# dataclass field resolution looks the module up in sys.modules.
sys.modules["check_docs"] = check_docs
_spec.loader.exec_module(check_docs)


def _write(tmp_path, text):
    path = tmp_path / "doc.md"
    path.write_text(textwrap.dedent(text))
    return path


class TestBlockExtraction:
    def test_blocks_language_body_and_location(self, tmp_path):
        path = _write(tmp_path, """\
            # Title

            ```python
            # runnable
            print("hi")
            ```

            prose

            ```bash
            echo untagged
            ```
        """)
        blocks = check_docs.extract_blocks(path)
        assert [(b.language, b.line) for b in blocks] == [
            ("python", 3), ("bash", 10)]
        assert blocks[0].runnable and not blocks[1].runnable
        assert blocks[0].code == '# runnable\nprint("hi")'

    def test_marker_only_counts_on_first_line(self, tmp_path):
        path = _write(tmp_path, """\
            ```python
            print("x")
            # runnable
            ```
        """)
        (block,) = check_docs.extract_blocks(path)
        assert not block.runnable

    def test_runnable_python_block_executes(self, tmp_path):
        path = _write(tmp_path, """\
            ```python
            # runnable
            import repro.api
            ```
        """)
        (block,) = check_docs.extract_blocks(path)
        assert check_docs.run_block(block) is None

    def test_failing_block_reports_location(self, tmp_path):
        path = _write(tmp_path, """\
            ```python
            # runnable
            raise SystemExit(3)
            ```
        """)
        (block,) = check_docs.extract_blocks(path)
        error = check_docs.run_block(block)
        assert error is not None and "doc.md:1" in error
        assert "exited 3" in error

    def test_runnable_bash_block_executes(self, tmp_path):
        path = _write(tmp_path, """\
            ```bash
            # runnable
            true
            ```
        """)
        (block,) = check_docs.extract_blocks(path)
        assert check_docs.run_block(block) is None


class TestLinkExtraction:
    def test_skips_external_anchor_and_fenced_links(self, tmp_path):
        path = _write(tmp_path, """\
            [api](api.md) and [web](https://example.com) and
            [here](#section) and [mail](mailto:x@y.z)

            ```text
            [not a link check](inside_fence.md)
            ```

            [frag](other.md#anchor)
        """)
        assert check_docs.extract_links(path) == [
            (1, "api.md"), (8, "other.md#anchor")]

    def test_check_links_flags_missing_target(self, tmp_path):
        (tmp_path / "other.md").write_text("x")
        path = _write(tmp_path, """\
            [ok](other.md) [ok-frag](other.md#part)
            [broken](missing.md)
        """)
        problems = check_docs.check_links(path)
        assert len(problems) == 1
        assert "missing.md" in problems[0] and "doc.md:2" in problems[0]


class TestRepoDocs:
    def test_docs_tree_is_listed(self):
        names = [p.name for p in check_docs.doc_files()]
        for expected in ("architecture.md", "api.md", "service.md",
                         "README.md"):
            assert expected in names

    def test_repo_docs_clean(self, capsys):
        """The real gate: runnable blocks execute, links resolve."""
        assert check_docs.main([]) == 0
        out = capsys.readouterr().out
        assert "0 problem(s)" in out
