"""Tests for variation-graph construction (vg construct equivalent)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import (
    Variant,
    VariantError,
    build_graph,
    normalize_variant,
)
from repro.io.vcf import VcfRecord
from repro.sim.reference import random_reference
from repro.sim.variants import (
    VariantProfile,
    apply_variants,
    simulate_variants,
)


class TestNormalize:
    def test_snp(self):
        variant = normalize_variant(VcfRecord("c", 5, "A", "G"))
        assert variant == Variant(4, 5, "G")

    def test_anchored_insertion(self):
        variant = normalize_variant(VcfRecord("c", 5, "A", "AGG"))
        assert variant == Variant(5, 5, "GG")

    def test_anchored_deletion(self):
        variant = normalize_variant(VcfRecord("c", 5, "ATT", "A"))
        assert variant == Variant(5, 7, "")

    def test_shared_suffix_stripped(self):
        variant = normalize_variant(VcfRecord("c", 5, "ACG", "ATG"))
        assert variant == Variant(5, 6, "T")

    def test_noop_returns_none(self):
        assert normalize_variant(VcfRecord("c", 5, "AC", "AC")) is None

    def test_variant_validation(self):
        with pytest.raises(VariantError):
            Variant(-1, 2, "A")
        with pytest.raises(VariantError):
            Variant(3, 2, "A")
        with pytest.raises(VariantError):
            Variant(3, 3, "")


class TestBuildLinear:
    def test_no_variants_single_node(self):
        built = build_graph("ACGTACGT")
        assert built.graph.node_count == 1
        assert built.backbone_sequence() == "ACGTACGT"

    def test_max_node_length_chunks(self):
        built = build_graph("ACGTACGTAC", max_node_length=3)
        assert built.backbone_sequence() == "ACGTACGTAC"
        assert all(len(built.graph.sequence_of(n)) <= 3
                   for n in built.backbone)

    def test_empty_reference_rejected(self):
        with pytest.raises(Exception):
            build_graph("")


class TestBuildVariants:
    def test_snp_creates_bubble(self):
        # Reference ACGTACGT with SNP T->G at position 3 (paper Fig. 1).
        built = build_graph("ACGTACGT", [Variant(3, 4, "G")])
        graph = built.graph
        assert built.backbone_sequence() == "ACGTACGT"
        # Some path spells the variant haplotype.
        assert _spells(graph, "ACGGACGT")

    def test_insertion(self):
        built = build_graph("ACGTACGT", [Variant(4, 4, "T")])
        assert built.backbone_sequence() == "ACGTACGT"
        assert _spells(built.graph, "ACGTTACGT")

    def test_deletion(self):
        built = build_graph("ACGTACGT", [Variant(3, 4, "")])
        assert built.backbone_sequence() == "ACGTACGT"
        assert _spells(built.graph, "ACGACGT")

    def test_fig1_graph_spells_all_four_sequences(self):
        # Paper Fig. 1: 4 related sequences from one graph.
        built = build_graph(
            "ACGTACGT",
            [Variant(3, 4, "G"), Variant(4, 4, "T"), Variant(3, 4, "")],
        )
        for haplotype in ["ACGTACGT", "ACGGACGT", "ACGTTACGT", "ACGACGT"]:
            assert _spells(built.graph, haplotype)

    def test_variant_at_reference_start(self):
        built = build_graph("ACGT", [Variant(0, 1, "T")])
        assert _spells(built.graph, "TCGT")
        assert built.backbone_sequence() == "ACGT"

    def test_variant_at_reference_end(self):
        built = build_graph("ACGT", [Variant(3, 4, "A")])
        assert _spells(built.graph, "ACGA")

    def test_whole_reference_deletion_at_boundary(self):
        built = build_graph("ACGT", [Variant(0, 2, "")])
        assert _spells(built.graph, "GT")

    def test_duplicate_variants_deduped(self):
        built = build_graph("ACGTACGT", [Variant(3, 4, "G"),
                                         Variant(3, 4, "G")])
        assert len(built.alt_nodes) == 1

    def test_variant_exceeding_reference_rejected(self):
        with pytest.raises(VariantError):
            build_graph("ACGT", [Variant(2, 9, "A")])

    def test_vcf_records_accepted(self):
        built = build_graph("ACGTACGT", [VcfRecord("c", 4, "T", "G")])
        assert _spells(built.graph, "ACGGACGT")

    def test_result_is_topologically_sorted(self):
        built = build_graph("ACGTACGT" * 4,
                            [Variant(3, 4, "G"), Variant(10, 12, ""),
                             Variant(20, 20, "ACGT")])
        assert built.graph.is_topologically_sorted()
        built.graph.validate()

    def test_ref_positions_projection(self):
        built = build_graph("ACGTACGT", [Variant(3, 4, "G")])
        for node in built.backbone:
            position = built.ref_positions[node]
            length = len(built.graph.sequence_of(node))
            assert built.backbone_sequence()[position:position + length] \
                == built.graph.sequence_of(node)


def _spells(graph, target: str) -> bool:
    """True if some path (starting at any node) spells ``target``.

    Paths may start mid-graph: a deletion at the reference start is
    expressed by a path whose first node has predecessors.
    """
    stack = [(s, "") for s in range(graph.node_count)]
    while stack:
        node, prefix = stack.pop()
        spelled = prefix + graph.sequence_of(node)
        if spelled == target:
            return True
        if len(spelled) < len(target) and \
                target.startswith(spelled):
            for succ in graph.successors(node):
                stack.append((succ, spelled))
    return False


class TestBuildProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_variant_sets_build_valid_graphs(self, seed):
        rng = random.Random(seed)
        reference = random_reference(rng.randint(50, 400), rng)
        profile = VariantProfile(
            snp_rate=0.05, insertion_rate=0.02, deletion_rate=0.02,
            sv_rate=0.005, sv_min=5, sv_max=20, small_indel_max=4,
        )
        variants = simulate_variants(reference, rng, profile)
        built = build_graph(reference, variants)
        built.graph.validate()
        assert built.graph.is_topologically_sorted()
        assert built.backbone_sequence() == reference
        # The fully-varied haplotype is spelled by some path.
        haplotype = apply_variants(reference, variants)
        assert _spells(built.graph, haplotype)
