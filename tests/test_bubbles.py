"""Tests for bubble detection and graph-shape statistics."""

from __future__ import annotations

import random

import pytest

from repro.graph.builder import Variant, build_graph
from repro.graph.bubbles import find_simple_bubbles, graph_shape
from repro.graph.genome_graph import GenomeGraph, GraphError
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants


class TestFindBubbles:
    def test_snp_bubble(self):
        built = build_graph("ACGTACGTACGT", [Variant(5, 6, "T")])
        bubbles = find_simple_bubbles(built.graph)
        assert len(bubbles) == 1
        assert bubbles[0].arity == 2
        assert bubbles[0].is_snp_like

    def test_deletion_bubble_has_skip_edge(self):
        built = build_graph("ACGTACGTACGT", [Variant(5, 8, "")])
        bubbles = find_simple_bubbles(built.graph)
        assert len(bubbles) == 1
        assert bubbles[0].has_skip_edge
        assert not bubbles[0].is_snp_like

    def test_insertion_bubble(self):
        built = build_graph("ACGTACGTACGT", [Variant(6, 6, "TT")])
        bubbles = find_simple_bubbles(built.graph)
        assert len(bubbles) == 1
        assert bubbles[0].has_skip_edge  # direct edge skips the insert

    def test_multiallelic_bubble(self):
        built = build_graph("ACGTACGTACGT",
                            [Variant(5, 6, "T"), Variant(5, 6, "A")])
        bubbles = find_simple_bubbles(built.graph)
        assert len(bubbles) == 1
        assert bubbles[0].arity == 3

    def test_linear_graph_has_no_bubbles(self):
        graph = GenomeGraph.from_linear("ACGTACGT", node_length=2)
        assert find_simple_bubbles(graph) == []

    def test_requires_sorted_graph(self):
        graph = GenomeGraph()
        a, b = graph.add_node("A"), graph.add_node("C")
        graph.add_edge(b, a)
        with pytest.raises(GraphError):
            find_simple_bubbles(graph)

    def test_bubble_count_matches_variant_count(self):
        rng = random.Random(13)
        reference = random_reference(5_000, rng)
        profile = VariantProfile(snp_rate=0.01, insertion_rate=0.0,
                                 deletion_rate=0.0, sv_rate=0.0)
        variants = simulate_variants(reference, rng, profile)
        built = build_graph(reference, variants)
        bubbles = find_simple_bubbles(built.graph)
        # Isolated SNPs each create exactly one bubble (adjacent SNPs
        # can merge branching structure, so allow a small deficit).
        assert len(bubbles) >= 0.9 * len(variants)


class TestGraphShape:
    def test_snp_dominated_shape(self):
        """GIAB-like graphs are SNP-dominated — the premise behind the
        paper's Fig. 13 short-hop argument."""
        rng = random.Random(17)
        reference = random_reference(20_000, rng)
        profile = VariantProfile(snp_rate=0.004,
                                 insertion_rate=0.0003,
                                 deletion_rate=0.0003, sv_rate=0.0)
        variants = simulate_variants(reference, rng, profile)
        built = build_graph(reference, variants)
        shape = graph_shape(built.graph)
        assert shape.simple_bubbles > 0
        assert shape.snp_fraction > 0.7
        assert shape.branching_nodes >= shape.simple_bubbles

    def test_counts_are_consistent(self, small_graph):
        shape = graph_shape(small_graph)
        assert shape.nodes == small_graph.node_count
        assert shape.edges == small_graph.edge_count
        assert shape.bases == small_graph.total_sequence_length
        assert shape.max_out_degree >= 2

    def test_empty_shape_on_linear(self):
        graph = GenomeGraph.from_linear("ACGT" * 10, node_length=5)
        shape = graph_shape(graph)
        assert shape.simple_bubbles == 0
        assert shape.snp_fraction == 0.0
