"""Tests for the CLI hardware-model subcommand variants."""

from __future__ import annotations

from repro.cli import main


class TestModelSubcommand:
    def test_ont_workload(self, capsys):
        assert main(["model", "--workload", "ont"]) == 0
        out = capsys.readouterr().out
        assert "ONT-10%" in out
        assert "37.5 us" in out

    def test_illumina_workload(self, capsys):
        assert main(["model", "--workload", "illumina",
                     "--read-length", "100"]) == 0
        out = capsys.readouterr().out
        assert "Illumina-100bp" in out

    def test_custom_error_rate(self, capsys):
        assert main(["model", "--workload", "pacbio",
                     "--error-rate", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "PacBio-8%" in out

    def test_throughput_consistency_with_model(self, capsys):
        from repro.hw.pipeline import SeGraMPerformanceModel, \
            WorkloadProfile
        main(["model", "--workload", "pacbio"])
        out = capsys.readouterr().out
        expected = SeGraMPerformanceModel().reads_per_second(
            WorkloadProfile.pacbio(0.05))
        assert f"{expected:,.0f} reads/s" in out
