"""Tests for result reporting and evaluation metrics."""

from __future__ import annotations

import pytest

from repro.core.mapper import MappingResult
from repro.eval.metrics import MappingAccuracy, evaluate_linear_mappings
from repro.eval.report import format_ratio, format_table
from repro.sim.longread import SimulatedLinearRead


class TestFormatTable:
    def test_columns_aligned(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "22" in lines[-1]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="T")

    def test_none_rendered_as_dash(self):
        text = format_table([{"a": None}])
        assert "-" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456}, {"v": 12.3456},
                             {"v": 12345.6}])
        assert "0.123" in text
        assert "12.3" in text
        assert "12,346" in text

    def test_large_int_thousands_separator(self):
        assert "1,000,000" in format_table([{"v": 1_000_000}])

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_format_ratio(self):
        text = format_ratio(2.0, 4.0)
        assert "0.50x of paper" in text
        assert format_ratio(1.0, 0.0).endswith("(paper: 0)")


def _result(mapped: bool, position: int | None = None) -> MappingResult:
    return MappingResult(read_name="r", read_length=100, mapped=mapped,
                         distance=0 if mapped else None,
                         linear_position=position)


def _truth(start: int) -> SimulatedLinearRead:
    return SimulatedLinearRead(name="r", sequence="A" * 100,
                               ref_start=start, ref_end=start + 100,
                               errors=0)


class TestMetrics:
    def test_all_correct(self):
        results = [_result(True, 100), _result(True, 205)]
        truths = [_truth(100), _truth(200)]
        accuracy = evaluate_linear_mappings(results, truths,
                                            tolerance=10)
        assert accuracy.sensitivity == 1.0
        assert accuracy.precision == 1.0
        assert accuracy.mapping_rate == 1.0

    def test_wrong_position_counts_against_sensitivity(self):
        results = [_result(True, 5_000)]
        truths = [_truth(100)]
        accuracy = evaluate_linear_mappings(results, truths)
        assert accuracy.mapped == 1
        assert accuracy.correct == 0
        assert accuracy.precision == 0.0

    def test_unmapped(self):
        accuracy = evaluate_linear_mappings([_result(False)],
                                            [_truth(0)])
        assert accuracy.mapping_rate == 0.0
        assert accuracy.sensitivity == 0.0

    def test_missing_projection_not_correct(self):
        accuracy = evaluate_linear_mappings([_result(True, None)],
                                            [_truth(0)])
        assert accuracy.mapped == 1
        assert accuracy.correct == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_linear_mappings([_result(True, 0)], [])

    def test_empty_accuracy(self):
        accuracy = MappingAccuracy(total=0, mapped=0, correct=0)
        assert accuracy.mapping_rate == 0.0
        assert accuracy.sensitivity == 0.0
        assert accuracy.precision == 0.0
