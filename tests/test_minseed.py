"""Tests for the MinSeed seeding stage."""

from __future__ import annotations

import random

import pytest

from repro.core.minseed import MinSeed
from repro.graph.genome_graph import GenomeGraph
from repro.index.hash_index import build_index
from repro.sim.reference import random_reference


@pytest.fixture(scope="module")
def seeded():
    rng = random.Random(99)
    reference = random_reference(30_000, rng)
    graph = GenomeGraph.from_linear(reference, node_length=2_000)
    index = build_index(graph, w=10, k=15, bucket_bits=12)
    minseed = MinSeed(graph, index, error_rate=0.05)
    return reference, graph, minseed


class TestSeeding:
    def test_exact_read_seeds_cover_true_locus(self, seeded):
        reference, graph, minseed = seeded
        start = 12_345
        read = reference[start:start + 300]
        regions, stats = minseed.seed(read)
        assert stats.minimizer_count > 0
        assert regions, "an exact read must produce seed regions"
        # Some region must cover the true locus.
        assert any(r.start <= start < r.end for r in regions)

    def test_seed_region_arithmetic_matches_fig9(self, seeded):
        reference, graph, minseed = seeded
        read = reference[5_000:5_200]
        regions, _ = minseed.seed(read)
        m = len(read)
        e = minseed.error_rate
        for region in regions:
            seed = region.seed
            a, b = seed.read_start, seed.read_end
            c, d = seed.graph_start, seed.graph_end
            assert b == a + minseed.index.k - 1
            assert d == c + minseed.index.k - 1
            x = int(c - a * (1 + e))
            y = int(d + (m - b - 1) * (1 + e))
            assert region.start == max(0, x)
            assert region.end == min(graph.total_sequence_length, y + 1)

    def test_region_contains_room_for_whole_read(self, seeded):
        """The left+right extensions must make the region at least as
        long as the read (up to clamping at reference ends)."""
        reference, graph, minseed = seeded
        read = reference[10_000:10_400]
        regions, _ = minseed.seed(read)
        for region in regions:
            if region.start > 0 and \
                    region.end < graph.total_sequence_length:
                assert region.length >= len(read)

    def test_seed_matches_are_exact(self, seeded):
        """Every reported seed is a true exact k-mer match."""
        reference, graph, minseed = seeded
        read = reference[20_000:20_250]
        regions, _ = minseed.seed(read)
        k = minseed.index.k
        for region in regions:
            seed = region.seed
            read_kmer = read[seed.read_start:seed.read_start + k]
            node_seq = graph.sequence_of(seed.node_id)
            graph_kmer = node_seq[seed.node_offset:seed.node_offset + k]
            assert read_kmer == graph_kmer

    def test_duplicate_spans_deduped(self, seeded):
        _, _, minseed = seeded
        read = "ACGT" * 30  # highly periodic: many identical regions
        regions, stats = minseed.seed(read)
        spans = [(r.start, r.end) for r in regions]
        assert len(spans) == len(set(spans))

    def test_empty_read_rejected(self, seeded):
        _, _, minseed = seeded
        with pytest.raises(ValueError):
            minseed.seed("")

    def test_error_rate_validation(self, seeded):
        reference, graph, minseed = seeded
        with pytest.raises(ValueError):
            MinSeed(graph, minseed.index, error_rate=1.5)

    def test_stats_accounting(self, seeded):
        reference, _, minseed = seeded
        read = reference[8_000:8_300]
        regions, stats = minseed.seed(read)
        assert stats.region_count == len(regions)
        assert stats.seed_count >= stats.region_count
        assert stats.index_accesses > 0
        assert stats.surviving_minimizers == \
            stats.minimizer_count - stats.filtered_minimizers


class TestFrequencyFilter:
    def test_repetitive_minimizers_filtered(self):
        rng = random.Random(5)
        # A genome that is one repeated unit: every minimizer is highly
        # frequent except boundary effects.
        unit = random_reference(200, rng)
        reference = unit * 50 + random_reference(10_000, rng)
        graph = GenomeGraph.from_linear(reference, node_length=2_000)
        index = build_index(graph, w=10, k=15, bucket_bits=12)
        # The repeat minimizers are ~2 % of distinct minimizers, all at
        # the same frequency; a 5 % top fraction clears the tie group.
        minseed = MinSeed(graph, index, error_rate=0.05,
                          freq_top_fraction=0.05)
        read = unit * 2
        regions, stats = minseed.seed(read)
        assert stats.filtered_minimizers > 0

    def test_explicit_threshold_respected(self, seeded):
        reference, graph, minseed = seeded
        strict = MinSeed(graph, minseed.index, error_rate=0.05,
                         freq_threshold=0)
        read = reference[1_000:1_300]
        regions, stats = strict.seed(read)
        # Threshold 0 discards every minimizer present in the index.
        assert regions == []
        assert stats.seed_count == 0
        assert stats.filtered_minimizers > 0
