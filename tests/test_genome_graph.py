"""Tests for the genome graph data structure and memory layout."""

from __future__ import annotations

import pytest

from repro.graph.genome_graph import (
    CycleError,
    GenomeGraph,
    GraphError,
    NODE_TABLE_ENTRY_BYTES,
)


def diamond() -> GenomeGraph:
    """ACG -> T / G -> ACGT (the Fig. 1 style bubble)."""
    graph = GenomeGraph("diamond")
    a = graph.add_node("ACG")
    b = graph.add_node("T")
    c = graph.add_node("G")
    d = graph.add_node("ACGT")
    graph.add_edge(a, b)
    graph.add_edge(a, c)
    graph.add_edge(b, d)
    graph.add_edge(c, d)
    return graph


class TestConstruction:
    def test_counts(self):
        graph = diamond()
        assert graph.node_count == 4
        assert graph.edge_count == 4
        assert graph.total_sequence_length == 9

    def test_empty_sequence_rejected(self):
        with pytest.raises(GraphError):
            GenomeGraph().add_node("")

    def test_invalid_base_rejected(self):
        with pytest.raises(Exception):
            GenomeGraph().add_node("ACGN")

    def test_self_loop_rejected(self):
        graph = GenomeGraph()
        n = graph.add_node("A")
        with pytest.raises(GraphError):
            graph.add_edge(n, n)

    def test_duplicate_edge_idempotent(self):
        graph = GenomeGraph()
        a, b = graph.add_node("A"), graph.add_node("C")
        graph.add_edge(a, b)
        graph.add_edge(a, b)
        assert graph.edge_count == 1

    def test_unknown_node_rejected(self):
        graph = GenomeGraph()
        graph.add_node("A")
        with pytest.raises(GraphError):
            graph.add_edge(0, 5)

    def test_from_linear_single_node(self):
        graph = GenomeGraph.from_linear("ACGTACGT")
        assert graph.node_count == 1
        assert graph.edge_count == 0

    def test_from_linear_chunked(self):
        graph = GenomeGraph.from_linear("ACGTACGTAC", node_length=4)
        assert graph.node_count == 3
        assert graph.edge_count == 2
        assert graph.spell_path([0, 1, 2]) == "ACGTACGTAC"

    def test_from_linear_empty_rejected(self):
        with pytest.raises(GraphError):
            GenomeGraph.from_linear("")


class TestTopology:
    def test_diamond_is_sorted(self):
        assert diamond().is_topologically_sorted()

    def test_unsorted_graph_detected_and_fixed(self):
        graph = GenomeGraph()
        a = graph.add_node("A")
        b = graph.add_node("C")
        graph.add_edge(b, a)  # backward edge
        assert not graph.is_topologically_sorted()
        fixed = graph.topologically_sorted()
        assert fixed.is_topologically_sorted()
        assert fixed.node_count == 2
        # Sequence content preserved.
        assert sorted(n.sequence for n in fixed.nodes()) == ["A", "C"]

    def test_cycle_detected(self):
        graph = GenomeGraph()
        a, b = graph.add_node("A"), graph.add_node("C")
        graph.add_edge(a, b)
        graph.add_edge(b, a)
        with pytest.raises(CycleError):
            graph.topological_order()

    def test_validate_passes_on_diamond(self):
        diamond().validate()

    def test_topological_order_deterministic(self):
        graph = diamond()
        assert graph.topological_order() == graph.topological_order()


class TestCoordinates:
    def test_offsets(self):
        graph = diamond()
        assert graph.offsets() == [0, 3, 4, 5]

    def test_node_at_offset(self):
        graph = diamond()
        assert graph.node_at_offset(0) == (0, 0)
        assert graph.node_at_offset(2) == (0, 2)
        assert graph.node_at_offset(3) == (1, 0)
        assert graph.node_at_offset(8) == (3, 3)

    def test_node_at_offset_out_of_range(self):
        with pytest.raises(GraphError):
            diamond().node_at_offset(9)
        with pytest.raises(GraphError):
            diamond().node_at_offset(-1)


class TestPaths:
    def test_spell_path(self):
        graph = diamond()
        assert graph.spell_path([0, 1, 3]) == "ACGTACGT"
        assert graph.spell_path([0, 2, 3]) == "ACGGACGT"

    def test_spell_path_invalid_edge(self):
        with pytest.raises(GraphError):
            diamond().spell_path([0, 3])

    def test_spell_empty_path(self):
        assert diamond().spell_path([]) == ""


class TestExtraction:
    def test_extract_region_full(self):
        graph = diamond()
        sub, ids = graph.extract_region(0, 9)
        assert sub.node_count == 4
        assert ids == [0, 1, 2, 3]
        assert sub.edge_count == 4

    def test_extract_region_partial(self):
        graph = diamond()
        sub, ids = graph.extract_region(3, 5)  # nodes 1 (T) and 2 (G)
        assert ids == [1, 2]
        assert sub.edge_count == 0  # edge into node 3 clipped

    def test_extract_region_overlapping_node_kept_whole(self):
        graph = diamond()
        sub, ids = graph.extract_region(1, 4)
        assert 0 in ids  # node 0 overlaps [1, 3)
        assert sub.sequence_of(0) == "ACG"

    def test_extract_empty_region_rejected(self):
        with pytest.raises(GraphError):
            diamond().extract_region(4, 4)

    def test_extracted_region_stays_sorted(self, small_graph):
        sub, _ = small_graph.extract_region(100, 500)
        assert sub.is_topologically_sorted()


class TestTables:
    def test_layout_matches_paper_fig5(self):
        graph = diamond()
        tables = graph.tables()
        # Node table: length, char start, out-degree, edge start.
        assert tables.node_table[0].tolist() == [3, 0, 2, 0]
        assert tables.node_table[1].tolist() == [1, 3, 1, 2]
        assert tables.node_table[3].tolist() == [4, 5, 0, 4]
        # Character table: 2-bit codes of ACG T G ACGT.
        assert tables.char_table.tolist() == \
            [0, 1, 2, 3, 2, 0, 1, 2, 3]
        # Edge table: destinations grouped by source.
        assert tables.edge_table.tolist() == [1, 2, 3, 3]

    def test_footprint_formulas(self):
        graph = diamond()
        tables = graph.tables()
        assert tables.node_table_bytes == 4 * NODE_TABLE_ENTRY_BYTES
        assert tables.edge_table_bytes == 4 * 4
        # 9 characters at 2 bits = 18 bits -> 3 bytes.
        assert tables.char_table_bytes == 3
        assert tables.total_bytes == 128 + 16 + 3

    def test_repr_mentions_counts(self):
        assert "nodes=4" in repr(diamond())
