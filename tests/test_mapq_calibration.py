"""MAPQ calibration, top-N candidates, and discordant-pair tests.

The MAPQ contract (ISSUE 4): a wrong placement must almost never be
reported confidently.  Unique placements earn high MAPQ; exact-repeat
ties are reported at MAPQ <= 3; over a mixed simulated suite, wrong
mappings at MAPQ >= 30 stay under 1 %.  Candidate ordering is pinned
to the stable ``(distance, strand, position)`` key, identical under
``--jobs`` sharding.  Discordant pairs round-trip their category
through SAM flags plus the ``YC:Z:`` tag and the ``--discordant-out``
report.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.core.alignment import Cigar, mapq_from_candidates
from repro.core.mapper import MappingResult, SeGraM, SeGraMConfig
from repro.core.pairing import (
    CATEGORY_BOTH_UNMAPPED,
    CATEGORY_ONE_MATE_UNMAPPED,
    CATEGORY_PROPER,
    CATEGORY_TLEN_OUTLIER,
    CATEGORY_WRONG_ORIENTATION,
    PairedEndConfig,
    PairedEndMapper,
    PairResult,
    classify_pair,
)
from repro.core.windows import WindowingConfig
from repro.eval.metrics import (
    evaluate_mapq_calibration,
    evaluate_paired_mappings,
)
from repro.io.discordant import (
    read_discordant_report,
    write_discordant_report,
)
from repro.io.sam import pair_to_sam, read_sam, validate_sam_pair, \
    write_sam
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.pairedend import PairedEndProfile, simulate_fragments
from repro.sim.reference import (
    random_reference,
    reference_with_exact_repeats,
)


def _mapper(reference: str, **overrides) -> SeGraM:
    config = SeGraMConfig(
        w=10, k=15, bucket_bits=12, error_rate=0.05,
        windowing=WindowingConfig(window_size=128, overlap=48, k=16),
        max_seeds_per_read=8, both_strands=True,
        **overrides,
    )
    return SeGraM.from_reference(reference, config=config, name="chr1")


class TestMapqFormula:
    def test_unmapped_is_zero(self):
        assert mapq_from_candidates(None, None, None) == 0

    def test_unique_hit_gets_identity_ceiling(self):
        assert mapq_from_candidates(1.0, 0, None) == 60
        assert mapq_from_candidates(0.95, 5, None) == 57

    def test_tie_capped_at_three(self):
        assert mapq_from_candidates(1.0, 0, 0) == 3
        assert mapq_from_candidates(1.0, 2, 1) == 3  # gap < 0 too

    def test_gap_scales_mapq(self):
        assert mapq_from_candidates(1.0, 0, 1) == 12
        assert mapq_from_candidates(1.0, 0, 2) == 24
        assert mapq_from_candidates(1.0, 0, 5) == 60

    def test_identity_caps_gap_term(self):
        # A unique-but-terrible alignment is not confident.
        assert mapq_from_candidates(0.5, 10, 50) == 30

    def test_proper_pair_bonus_clamped(self):
        assert mapq_from_candidates(1.0, 0, None,
                                    proper_pair=True) == 60
        assert mapq_from_candidates(1.0, 0, 1,
                                    proper_pair=True) == 17


@pytest.fixture(scope="module")
def repeat_setup():
    """An exact-repeat reference plus a mapper over it."""
    rng = random.Random(0xCA1B)
    reference, copy_starts = reference_with_exact_repeats(
        12_000, rng, repeat_length=400, copies=2,
    )
    return reference, copy_starts, _mapper(reference)


class TestCandidateCalibration:
    def test_unique_read_high_mapq(self, repeat_setup):
        reference, copy_starts, mapper = repeat_setup
        read = reference[100:200]  # unique flank
        result = mapper.map_read(read, "uniq")
        assert result.mapped
        assert result.second_best_distance is None \
            or result.second_best_distance - result.distance >= 3
        assert result.mapq >= 30

    def test_exact_repeat_tie_low_mapq(self, repeat_setup):
        reference, copy_starts, mapper = repeat_setup
        start = copy_starts[0] + 50
        read = reference[start:start + 100]  # inside a copy
        result = mapper.map_read(read, "tied")
        assert result.mapped
        assert result.distance == 0
        assert result.second_best_distance == 0
        assert result.candidate_count >= 2
        assert result.mapq <= 3
        # Both copies are in the candidate list.
        positions = sorted(c.linear_position
                           for c in result.candidates
                           if c.strand == "+")
        spacing = copy_starts[1] - copy_starts[0]
        assert positions[1] - positions[0] == spacing

    def test_candidates_sorted_by_stable_key(self, repeat_setup):
        reference, copy_starts, mapper = repeat_setup
        start = copy_starts[0] + 120
        read = reference[start:start + 100]
        result = mapper.map_read(read, "tied")
        keys = [c.sort_key for c in result.candidates]
        assert keys == sorted(keys)
        # Equal-distance forward candidates: leftmost reported.
        tied = [c for c in result.candidates
                if c.distance == result.distance
                and c.strand == result.strand]
        assert result.linear_position == \
            min(c.linear_position for c in tied)

    def test_top_n_one_still_detects_ties(self, repeat_setup):
        reference, copy_starts, _ = repeat_setup
        mapper = _mapper(reference, top_n_alignments=1)
        start = copy_starts[0] + 50
        result = mapper.map_read(reference[start:start + 100], "tied")
        assert len(result.candidates) == 1
        assert result.second_best_distance == result.distance
        assert result.mapq <= 3
        # with_candidate(0) must not wipe the pre-truncation
        # runner-up (regression: the paired path at --top-n 1 used
        # to report MAPQ 60 for the same coin-flip placement).
        rebuilt = result.with_candidate(0)
        assert rebuilt.second_best_distance == \
            result.second_best_distance
        assert rebuilt.mapq == result.mapq

    def test_paired_top_n_one_keeps_tie_mapq_in_sam(self,
                                                    repeat_setup):
        """End-to-end regression for the --top-n 1 paired path: a
        repeat-tied mate's SAM MAPQ stays at tie level (plus at most
        the proper-pair bonus), never unique-level confidence."""
        reference, copy_starts, _ = repeat_setup
        from repro import seq as seqmod

        mapper = _mapper(reference, top_n_alignments=1)
        engine = PairedEndMapper(mapper, PairedEndConfig(
            insert_mean=350.0, insert_std=50.0, rescue=False))
        start = copy_starts[0] + 50
        read1 = reference[start:start + 100]
        read2 = seqmod.reverse_complement(
            reference[start + 250:start + 350])
        pair = engine.map_pair(read1, read2, "tied")
        tied_mate = pair.mate1
        assert tied_mate.second_best_distance == tied_mate.distance
        rec1, _ = pair_to_sam(pair, read1, read2, "chr1")
        assert rec1.mapq <= 3 + 5

    def test_wrong_at_confident_mapq_under_one_percent(self,
                                                       repeat_setup):
        """The ISSUE acceptance bar: wrong mappings at MAPQ >= 30
        stay under 1 % of confident calls on a mixed suite."""
        from repro.sim.longread import SimulatedLinearRead

        reference, copy_starts, mapper = repeat_setup
        rng = random.Random(0x5EED5)
        truths = []
        # Unique-flank reads plus repeat-interior reads, 1 % error.
        starts = [rng.randint(0, len(reference) - 100)
                  for _ in range(40)]
        starts += [copy_starts[i % 2] + rng.randint(0, 300)
                   for i in range(20)]
        model = ErrorModel.illumina(0.01)
        for index, start in enumerate(starts):
            fragment = reference[start:start + 100]
            noisy, errors = apply_errors(fragment, model, rng)
            truths.append(SimulatedLinearRead(
                name=f"read{index}", sequence=noisy,
                ref_start=start, ref_end=start + 100, errors=errors))
        results = mapper.map_batch(
            [(t.name, t.sequence) for t in truths])
        calibration = evaluate_mapq_calibration(results, truths,
                                                tolerance=30)
        assert calibration.total_mapped >= 55
        assert calibration.confident > 0
        assert calibration.wrong_at_confident_rate < 0.01
        # Repeat-interior reads do get flagged as ties.
        assert calibration.tied >= 10

    def test_jobs_sharding_preserves_candidates(self, repeat_setup):
        """Batch sharding must not change candidate order, MAPQ, or
        the reported placement (the determinism satellite)."""
        reference, copy_starts, _ = repeat_setup
        rng = random.Random(0x10B5)
        reads = []
        for index in range(8):
            start = rng.choice(
                [copy_starts[0] + 40, copy_starts[1] + 40,
                 500, 5_000])
            reads.append((f"r{index}",
                          reference[start:start + 100]))
        outcomes = []
        for jobs in (1, 2):
            mapper = _mapper(reference)
            results = mapper.map_batch(reads, jobs=jobs)
            outcomes.append([
                (r.linear_position, r.strand, r.distance,
                 r.second_best_distance, r.candidate_count, r.mapq,
                 tuple(c.sort_key for c in r.candidates))
                for r in results
            ])
        assert outcomes[0] == outcomes[1]


class TestRepeatTiePairing:
    """The tentpole acceptance: the candidate grid pairs repeat ties
    correctly with rescue disabled."""

    @pytest.fixture(scope="class")
    def tie_workload(self):
        rng = random.Random(0x11E5)
        reference, copy_starts = reference_with_exact_repeats(
            14_000, rng, repeat_length=400, copies=2,
        )
        profile = PairedEndProfile.illumina(
            read_length=100, error_rate=0.01,
            insert_mean=350.0, insert_std=50.0)
        # Fragments start in the *last* copy: the leftmost tie-break
        # alone would place the ambiguous mate in the wrong copy.
        last = copy_starts[-1]
        fragments = simulate_fragments(
            reference, 12, rng, profile, name_prefix="tie",
            start_range=(last, last + 300))
        return reference, fragments

    def _run(self, reference, fragments, top_n, rescue):
        mapper = _mapper(reference, top_n_alignments=top_n)
        engine = PairedEndMapper(mapper, PairedEndConfig(
            insert_mean=350.0, insert_std=50.0, rescue=rescue))
        pairs = [(f.name, f.mate1.sequence, f.mate2.sequence)
                 for f in fragments]
        results = engine.map_pairs(pairs)
        return results, engine.stats

    def test_grid_matches_rescue_without_rescue(self, tie_workload):
        reference, fragments = tie_workload
        naive, _ = self._run(reference, fragments, 1, False)
        rescued, stats_rescued = self._run(reference, fragments,
                                           1, True)
        grid, stats_grid = self._run(reference, fragments, 5, False)
        acc = {
            "naive": evaluate_paired_mappings(naive, fragments,
                                              tolerance=30),
            "rescued": evaluate_paired_mappings(rescued, fragments,
                                                tolerance=30),
            "grid": evaluate_paired_mappings(grid, fragments,
                                             tolerance=30),
        }
        # Ties genuinely break the single-candidate configuration.
        assert acc["naive"].proper_pair_rate \
            < acc["rescued"].proper_pair_rate
        # The grid matches rescue-level pairing at zero rescue cost.
        assert acc["grid"].proper_pair_rate \
            >= acc["rescued"].proper_pair_rate
        assert acc["grid"].mate_accuracy >= acc["rescued"].mate_accuracy
        assert stats_grid.rescue_attempts == 0
        assert stats_rescued.rescue_attempts > 0

    def test_tied_mate_mapq_stays_low_even_when_paired(self,
                                                       tie_workload):
        """Re-placing a tied mate via the insert model does not fake
        single-end confidence: its MAPQ (before the pair bonus)
        reflects that another copy tied."""
        reference, fragments = tie_workload
        grid, _ = self._run(reference, fragments, 5, False)
        tied_mates = 0
        for pair in grid:
            for mate in (pair.mate1, pair.mate2):
                if mate.mapped and \
                        mate.second_best_distance == mate.distance:
                    tied_mates += 1
                    assert mate.mapq <= 3
        assert tied_mates > 0


def _mapped_result(name, position, strand, length=100,
                   second_best=None):
    return MappingResult(
        read_name=name, read_length=length, mapped=True,
        distance=0, cigar=Cigar.from_string(f"{length}="),
        linear_position=position, strand=strand,
        second_best_distance=second_best,
    )


def _unmapped_result(name, length=100):
    return MappingResult(read_name=name, read_length=length,
                         mapped=False)


class TestDiscordantClassification:
    CONFIG = PairedEndConfig(insert_mean=350.0, insert_std=50.0)

    def test_proper_passthrough(self):
        m1 = _mapped_result("p/1", 1_000, "+")
        m2 = _mapped_result("p/2", 1_250, "-")
        assert classify_pair(m1, m2, self.CONFIG, proper=True) \
            == CATEGORY_PROPER

    def test_measures_tlen_when_proper_flag_not_precomputed(self):
        # classify_pair must measure the bounds itself: an in-window
        # FR pair classifies proper even when the caller did not
        # pre-establish concordance.
        m1 = _mapped_result("p/1", 1_000, "+")
        m2 = _mapped_result("p/2", 1_250, "-")
        assert classify_pair(m1, m2, self.CONFIG) == CATEGORY_PROPER

    def test_wrong_orientation_same_strand(self):
        m1 = _mapped_result("p/1", 1_000, "+")
        m2 = _mapped_result("p/2", 1_250, "+")
        assert classify_pair(m1, m2, self.CONFIG) \
            == CATEGORY_WRONG_ORIENTATION

    def test_wrong_orientation_everted(self):
        # Reverse mate leftmost: outward-facing (RF) geometry.
        m1 = _mapped_result("p/1", 1_250, "+")
        m2 = _mapped_result("p/2", 800, "-")
        assert classify_pair(m1, m2, self.CONFIG) \
            == CATEGORY_WRONG_ORIENTATION

    def test_tlen_outlier(self):
        # FR geometry but 5 kbp apart: deletion evidence.
        m1 = _mapped_result("p/1", 1_000, "+")
        m2 = _mapped_result("p/2", 6_000, "-")
        assert classify_pair(m1, m2, self.CONFIG) \
            == CATEGORY_TLEN_OUTLIER

    def test_unmapped_categories(self):
        m1 = _mapped_result("p/1", 1_000, "+")
        assert classify_pair(m1, _unmapped_result("p/2"),
                             self.CONFIG) \
            == CATEGORY_ONE_MATE_UNMAPPED
        assert classify_pair(_unmapped_result("p/1"),
                             _unmapped_result("p/2"), self.CONFIG) \
            == CATEGORY_BOTH_UNMAPPED

    def test_mapper_emits_tlen_outlier_for_split_fragment(self):
        """End-to-end: mates drawn from loci 5 kbp apart come back
        classified as TLEN outliers (deletion evidence)."""
        rng = random.Random(0xD15C0)
        reference = random_reference(12_000, rng)
        mapper = _mapper(reference)
        engine = PairedEndMapper(mapper, PairedEndConfig(
            insert_mean=350.0, insert_std=50.0, rescue=False))
        from repro import seq as seqmod

        read1 = reference[2_000:2_100]
        read2 = seqmod.reverse_complement(reference[8_000:8_100])
        pair = engine.map_pair(read1, read2, "split")
        assert not pair.proper
        assert pair.category == CATEGORY_TLEN_OUTLIER
        assert engine.stats.discordant == {CATEGORY_TLEN_OUTLIER: 1}


class TestDiscordantSamRoundTrip:
    def _pair(self, category):
        if category == CATEGORY_PROPER:
            m1 = _mapped_result("p/1", 1_000, "+")
            m2 = _mapped_result("p/2", 1_250, "-")
            return PairResult(name="p", mate1=m1, mate2=m2,
                              proper=True, template_length=350,
                              score=0, category=category)
        if category == CATEGORY_WRONG_ORIENTATION:
            m1 = _mapped_result("p/1", 1_000, "+")
            m2 = _mapped_result("p/2", 1_250, "+")
        elif category == CATEGORY_TLEN_OUTLIER:
            m1 = _mapped_result("p/1", 1_000, "+")
            m2 = _mapped_result("p/2", 6_000, "-")
        else:  # one mate unmapped
            m1 = _mapped_result("p/1", 1_000, "+")
            m2 = _unmapped_result("p/2")
        return PairResult(name="p", mate1=m1, mate2=m2,
                          category=category)

    @pytest.mark.parametrize("category", [
        CATEGORY_PROPER,
        CATEGORY_WRONG_ORIENTATION,
        CATEGORY_TLEN_OUTLIER,
        CATEGORY_ONE_MATE_UNMAPPED,
    ])
    def test_category_round_trips_through_sam(self, category):
        pair = self._pair(category)
        read = "A" * 100
        rec1, rec2 = pair_to_sam(pair, read, read, "chr1")
        validate_sam_pair(rec1, rec2)
        assert rec1.pair_category == category
        assert rec2.pair_category == category
        assert rec1.is_proper_pair == (category == CATEGORY_PROPER)
        assert rec2.is_mate_unmapped is False  # mate 1 always maps
        if category == CATEGORY_ONE_MATE_UNMAPPED:
            assert rec1.is_mate_unmapped
            assert rec2.is_unmapped
        buffer = io.StringIO()
        write_sam(buffer, [rec1, rec2], "chr1", 20_000)
        parsed = read_sam(io.StringIO(buffer.getvalue()))
        assert parsed == [rec1, rec2]
        validate_sam_pair(*parsed)

    def test_discordant_report_round_trip(self):
        pairs = [self._pair(c) for c in (
            CATEGORY_PROPER, CATEGORY_WRONG_ORIENTATION,
            CATEGORY_TLEN_OUTLIER, CATEGORY_ONE_MATE_UNMAPPED,
        )]
        buffer = io.StringIO()
        written = write_discordant_report(buffer, pairs)
        assert written == 3  # proper pairs are skipped
        records = read_discordant_report(
            io.StringIO(buffer.getvalue()))
        assert [r.category for r in records] == [
            CATEGORY_WRONG_ORIENTATION, CATEGORY_TLEN_OUTLIER,
            CATEGORY_ONE_MATE_UNMAPPED,
        ]
        outlier = records[1]
        assert outlier.pos1 == 1_001 and outlier.pos2 == 6_001
        unmapped = records[2]
        assert unmapped.pos2 is None and unmapped.strand2 == "."
