"""Cross-cutting integration and property tests.

These tie subsystems together end to end: simulated genomes through
graph construction, indexing, mapping, and output formats, with
replay-level validation of every alignment the pipeline reports.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_graph import graph_distance
from repro.core.bitalign import bitalign_distance
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.windows import WindowedAligner, WindowingConfig
from repro.graph.builder import build_graph
from repro.graph.gfa import read_gfa, write_gfa
from repro.graph.linearize import linearize
from repro.io.gaf import result_to_gaf, validate_gaf_record
from repro.io.sam import result_to_sam, validate_sam_record
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants
import io


def _random_built(seed: int, length=300, snp=0.03, indel=0.01):
    rng = random.Random(seed)
    reference = random_reference(length, rng)
    profile = VariantProfile(snp_rate=snp, insertion_rate=indel,
                             deletion_rate=indel, sv_rate=0.0,
                             small_indel_max=4)
    variants = simulate_variants(reference, rng, profile)
    return build_graph(reference, variants), reference, rng


class TestGfaRoundtripProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_variation_graphs_roundtrip(self, seed):
        built, _, _ = _random_built(seed)
        buffer = io.StringIO()
        write_gfa(built.graph, buffer)
        buffer.seek(0)
        parsed = read_gfa(buffer)
        assert parsed.node_count == built.graph.node_count
        assert sorted(parsed.edges()) == sorted(built.graph.edges())
        assert [n.sequence for n in parsed.nodes()] == \
            [n.sequence for n in built.graph.nodes()]


class TestWindowedVsExactOnGraphs:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_single_window_reads_match_dp(self, seed):
        """On graphs (not just chains), reads fitting one window get
        the exact DP distance from the windowed aligner."""
        built, reference, rng = _random_built(seed, length=200)
        lin = linearize(built.graph)
        start = rng.randint(0, max(0, len(reference) - 60))
        read = reference[start:start + rng.randint(10, 60)]
        if not read:
            return
        chars = list(read)
        for _ in range(rng.randint(0, 2)):
            chars[rng.randrange(len(chars))] = rng.choice("ACGT")
        read = "".join(chars)
        aligner = WindowedAligner(WindowingConfig(window_size=128,
                                                  overlap=48, k=16))
        result = aligner.align(lin, read)
        dp, _ = graph_distance(lin, read)
        assert result.distance == dp

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_hop_limit_never_improves_distance(self, seed):
        built, reference, rng = _random_built(seed, length=200)
        exact = linearize(built.graph)
        limited = linearize(built.graph, hop_limit=3)
        start = rng.randint(0, max(0, len(reference) - 40))
        read = reference[start:start + 30]
        if len(read) < 10:
            return
        k = len(read)
        exact_result = bitalign_distance(exact, read, k)
        limited_result = bitalign_distance(limited, read, k)
        assert exact_result is not None
        assert limited_result is not None
        assert limited_result[0] >= exact_result[0]


class TestEndToEndPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        rng = random.Random(4242)
        reference = random_reference(40_000, rng)
        profile = VariantProfile(snp_rate=0.003,
                                 insertion_rate=0.0005,
                                 deletion_rate=0.0005, sv_rate=0.0)
        variants = simulate_variants(reference, rng, profile)
        mapper = SeGraM.from_reference(
            reference, variants,
            config=SeGraMConfig(
                w=10, k=15, bucket_bits=12, error_rate=0.03,
                windowing=WindowingConfig(window_size=128, overlap=48,
                                          k=16),
                max_seeds_per_read=4,
            ),
            max_node_length=4_000,
        )
        return mapper, reference, rng

    def test_every_mapped_read_produces_valid_gaf(self, pipeline):
        mapper, reference, rng = pipeline
        for _ in range(8):
            start = rng.randint(0, len(reference) - 400)
            fragment = reference[start:start + 300]
            read, _ = apply_errors(fragment, ErrorModel.illumina(0.01),
                                   rng)
            result = mapper.map_read(read, f"r{start}")
            if not result.mapped:
                continue
            record = result_to_gaf(result, mapper.graph, read)
            assert record is not None
            validate_gaf_record(record, mapper.graph)

    def test_every_mapped_read_produces_valid_sam(self, pipeline):
        mapper, reference, rng = pipeline
        for _ in range(5):
            start = rng.randint(0, len(reference) - 300)
            read = reference[start:start + 250]
            result = mapper.map_read(read, f"s{start}")
            if result.mapped:
                record = result_to_sam(result, read, "chr1")
                validate_sam_record(record)

    def test_mapping_is_deterministic(self, pipeline):
        mapper, reference, _ = pipeline
        read = reference[10_000:10_300]
        first = mapper.map_read(read, "det")
        second = mapper.map_read(read, "det")
        assert first.distance == second.distance
        assert first.cigar == second.cigar
        assert first.node_id == second.node_id
        assert first.path_nodes == second.path_nodes

    def test_reported_distance_replays_via_graph_path(self, pipeline):
        """Reconstruct the reference side from the reported graph path
        and re-validate the CIGAR against it — the strongest
        end-to-end consistency check."""
        mapper, reference, _ = pipeline
        read = reference[20_000:20_400]
        result = mapper.map_read(read, "replay")
        assert result.mapped
        spelled = "".join(mapper.graph.sequence_of(n)
                          for n in result.path_nodes)
        consumed = spelled[result.node_offset:
                           result.node_offset
                           + result.cigar.ref_consumed]
        from repro.core.alignment import replay_alignment
        assert replay_alignment(result.cigar, read, consumed) == \
            result.distance
