"""Tests for ``repro analyze`` — the AST invariant checker.

Every rule is proven three ways from fixture snippets under
``tests/analysis_fixtures/<rule>/``:

* ``flagged.py`` — violations the rule must catch;
* ``clean.py`` — idiomatic code the rule must pass (including the
  sanctioned idioms: seeded RNGs, masked shifts, TYPE_CHECKING
  imports, per-run config copies, typed excepts);
* ``suppressed.py`` — a violation carrying ``# repro: allow[<id>]``,
  which must drop out of the active findings but stay visible as a
  suppressed finding.

Module-scoped rules (dtype, shift-mask, layering) are exercised by
impersonating an in-scope module via ``analyze_source``'s ``name=``
override.  On top of the per-rule fixtures: the JSON schema
round-trips, the CLI honours the 0/1/2 exit-code contract, and —
the gate itself — ``src/repro`` analyzes clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    JSON_FORMAT_VERSION,
    Finding,
    Suppressions,
    UnknownRuleError,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
)
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"

#: rule id -> (fixture directory, impersonated module name).  The
#: module-scoped rules see fixture code as a kernel / align-layer
#: module; unscoped rules need no identity.
RULE_FIXTURES = {
    "determinism": ("determinism", None),
    "dtype": ("dtype", "repro.align.bitalign_fixture"),
    "shift-mask": ("shift_mask", "repro.align.bitalign_fixture"),
    "fork-safety": ("fork_safety", None),
    "layering": ("layering", "repro.align.fixture"),
    "stage-purity": ("stage_purity", None),
    "except-hygiene": ("except_hygiene", None),
}


def run_fixture(rule_id: str, variant: str):
    directory, module_name = RULE_FIXTURES[rule_id]
    path = FIXTURES / directory / f"{variant}.py"
    return analyze_source(path.read_text(), path=str(path),
                          name=module_name, rule_ids=[rule_id])


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_all_rules_registered():
    ids = [rule.id for rule in all_rules()]
    assert sorted(RULE_FIXTURES) == ids
    assert len(ids) >= 6


def test_rules_carry_summary_and_rationale():
    for rule in all_rules():
        assert rule.summary
        assert rule.rationale


def test_unknown_rule_lists_registered():
    with pytest.raises(UnknownRuleError) as excinfo:
        get_rule("no-such-rule")
    message = excinfo.value.args[0]
    assert "no-such-rule" in message
    assert "determinism" in message


# ----------------------------------------------------------------------
# Per-rule fixtures: flagged / clean / suppressed
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_flags_violations(rule_id):
    report = run_fixture(rule_id, "flagged")
    assert report.findings, f"{rule_id}: flagged fixture not flagged"
    assert all(f.rule == rule_id for f in report.findings)
    assert report.exit_code() == 1


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_passes_clean_code(rule_id):
    report = run_fixture(rule_id, "clean")
    assert not report.findings, (
        f"{rule_id} false positives: "
        + "; ".join(f.format_text() for f in report.findings)
    )
    assert report.exit_code() == 0


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_suppression_comment(rule_id):
    report = run_fixture(rule_id, "suppressed")
    assert not report.findings
    assert report.suppressed, (
        f"{rule_id}: suppressed fixture produced no finding at all"
    )
    assert all(f.rule == rule_id for f in report.suppressed)
    assert report.exit_code() == 0


def test_flagged_fixture_counts():
    # The determinism fixture violates once per draw; pin the count so
    # a silently narrowed rule cannot pass the >= 1 assertion above.
    report = run_fixture("determinism", "flagged")
    assert len(report.findings) == 5
    report = run_fixture("fork-safety", "flagged")
    assert len(report.findings) >= 5  # 3 writes + 2 resources + pool


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_suppression_window_and_multi_id():
    source = (
        "# repro: allow[rule-a, rule-b]\n"
        "x = 1\n"
        "y = 2\n"
    )
    sup = Suppressions(source)
    assert sup.is_suppressed("rule-a", 2, 2)  # line above
    assert sup.is_suppressed("rule-b", 1, 1)  # same line
    assert not sup.is_suppressed("rule-a", 3, 3)
    assert not sup.is_suppressed("rule-c", 2, 2)
    assert sup.rule_ids() == frozenset({"rule-a", "rule-b"})


def test_suppression_requires_rule_id():
    # A bare allow comment (no [rule-id]) suppresses nothing.
    report = analyze_source(
        "import time\nstamp = time.time()  # repro: allow\n",
        rule_ids=["determinism"],
    )
    assert len(report.findings) == 1


# ----------------------------------------------------------------------
# JSON schema
# ----------------------------------------------------------------------

def test_json_report_round_trip():
    report = run_fixture("determinism", "flagged")
    payload = json.loads(report.to_json())
    assert payload["version"] == JSON_FORMAT_VERSION
    assert payload["files_scanned"] == 1
    assert payload["rules"] == ["determinism"]
    assert len(payload["findings"]) == len(report.findings)
    for entry in payload["findings"]:
        assert entry["suppressed"] is False
        restored = Finding.from_dict(
            {k: v for k, v in entry.items() if k != "suppressed"})
        assert restored in report.findings
        assert ":" in restored.format_text()
        assert f"[{restored.rule}]" in restored.format_text()


def test_json_reports_suppressed_findings():
    report = run_fixture("determinism", "suppressed")
    payload = json.loads(report.to_json())
    flags = [entry["suppressed"] for entry in payload["findings"]]
    assert flags == [True]


def test_finding_rejects_bad_severity():
    with pytest.raises(ValueError):
        Finding(path="x.py", line=1, col=0, rule="r",
                message="m", severity="fatal")


# ----------------------------------------------------------------------
# Engine behaviour
# ----------------------------------------------------------------------

def test_parse_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = analyze_paths([bad])
    assert report.exit_code() == 1
    assert [f.rule for f in report.findings] == ["parse-error"]


def test_analyze_paths_deduplicates(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    report = analyze_paths([tmp_path, target])
    assert report.files_scanned == 1


def test_scoped_rules_skip_out_of_scope_modules():
    # The same inferred-dtype source is a finding only inside a kernel
    # module; everywhere else the dtype rule does not apply.
    source = "import numpy as np\nstate = np.zeros(8)\n"
    scoped = analyze_source(source, name="repro.align.bitalign_x",
                            rule_ids=["dtype"])
    unscoped = analyze_source(source, name="repro.eval.report",
                              rule_ids=["dtype"])
    assert len(scoped.findings) == 1
    assert not unscoped.findings


# ----------------------------------------------------------------------
# The gate: the shipped tree is clean
# ----------------------------------------------------------------------

def test_src_tree_is_clean():
    report = analyze_paths([SRC_TREE])
    assert report.exit_code() == 0, "\n" + report.format_text()
    assert report.files_scanned > 50
    # Every in-tree suppression must name a registered rule (a typo'd
    # id would silently suppress nothing — caught above — but a stale
    # allow for an unregistered rule is dead weight).
    registered = {rule.id for rule in all_rules()}
    for path in sorted(SRC_TREE.rglob("*.py")):
        for rule_id in Suppressions(path.read_text()).rule_ids():
            assert rule_id in registered, f"{path}: allow[{rule_id}]"


# ----------------------------------------------------------------------
# CLI contract: exit 0 clean / 1 findings / 2 usage error
# ----------------------------------------------------------------------

def test_cli_exit_zero_on_clean_file(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("import math\nx = math.pi\n")
    assert main(["analyze", str(clean)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstamp = time.time()\n")
    assert main(["analyze", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out


def test_cli_exit_two_on_unknown_rule(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    assert main(["analyze", "--rule", "bogus", str(target)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["analyze", "definitely/not/here.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstamp = time.time()\n")
    assert main(["analyze", "--format", "json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_FORMAT_VERSION
    assert payload["findings"][0]["rule"] == "determinism"


def test_cli_rule_selection(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nstamp = time.time()\n")
    assert main(["analyze", "--rule", "except-hygiene",
                 str(dirty)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
