"""Tests for the flat index, ``.sgidx`` artifacts, and worker pools.

Covers the zero-copy artifact contract end to end:

* :class:`~repro.index.FlatIndex` parity with the dict-catalog
  :class:`~repro.index.HashTableIndex` on every query of the
  ``frequency`` / ``lookup`` / ``lookup_cost`` / ``layout`` contract;
* artifact round trip (build -> write -> mmap attach) with
  bit-identical mapping results, and version/checksum rejection of
  corrupt, truncated, or stale artifacts;
* fork-shard vs persistent-pool result identity under
  ``jobs in {1, 2, 4}`` for single-end batches and pairs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import seq as seqmod
from repro.api import Mapper
from repro.core.mapper import SeGraMConfig
from repro.index.flat_index import FlatIndex, build_flat_index
from repro.index.hash_index import build_index
from repro.io.artifact import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    ArtifactError,
    is_index_artifact,
    load_index_artifact,
    pack_bases,
    unpack_bases,
)

CONFIG = SeGraMConfig(w=5, k=11, bucket_bits=10)


@pytest.fixture(scope="module")
def reference():
    rng = random.Random(1234)
    seq1 = "".join(rng.choice("ACGT") for _ in range(5_000))
    seq2 = "".join(rng.choice("ACGT") for _ in range(2_500))
    return [("chrA", seq1), ("chrB", seq2)]


@pytest.fixture(scope="module")
def mapper(reference):
    return Mapper(reference, config=CONFIG, max_node_length=512)


@pytest.fixture(scope="module")
def reads(reference):
    rng = random.Random(77)
    out = []
    for i, (_, seq) in enumerate(reference * 10):
        start = rng.randrange(0, len(seq) - 120)
        read = seq[start:start + 120]
        if i % 3 == 0:
            read = seqmod.reverse_complement(read)
        out.append((f"r{i}", read))
    return out


@pytest.fixture()
def artifact(mapper, tmp_path):
    path = tmp_path / "ref.sgidx"
    mapper.save_index(path)
    return path


class TestPackBases:
    def test_roundtrip(self):
        rng = random.Random(5)
        for length in (0, 1, 3, 4, 5, 63, 64, 257):
            text = "".join(rng.choice("ACGT") for _ in range(length))
            assert unpack_bases(pack_bases(text), length) == text

    def test_density(self):
        assert len(pack_bases("A" * 100)) == 25

    def test_non_acgt_rejected(self):
        with pytest.raises(ArtifactError):
            pack_bases("ACGN")


class TestFlatIndexParity:
    """FlatIndex must match the dict index bit for bit."""

    @pytest.fixture(scope="class")
    def indexes(self, mapper):
        dict_index = build_index(mapper.graph, w=CONFIG.w, k=CONFIG.k,
                                 bucket_bits=CONFIG.bucket_bits)
        return dict_index, FlatIndex.from_hash_index(dict_index)

    def test_present_hashes(self, indexes):
        dict_index, flat = indexes
        for hash_value, hits in dict_index.iter_entries():
            assert flat.frequency(hash_value) == \
                dict_index.frequency(hash_value)
            assert flat.lookup(hash_value) == hits
            assert flat.lookup_cost(hash_value) == \
                dict_index.lookup_cost(hash_value)

    def test_absent_hashes(self, indexes):
        dict_index, flat = indexes
        rng = random.Random(9)
        probes = [0, 1, 2**22 - 1, 2**60 + 13] + \
            [rng.randrange(2**CONFIG.k * 2) for _ in range(200)]
        for hash_value in probes:
            assert flat.frequency(hash_value) == \
                dict_index.frequency(hash_value)
            assert flat.lookup(hash_value) == \
                dict_index.lookup(hash_value)
            assert flat.lookup_cost(hash_value) == \
                dict_index.lookup_cost(hash_value)

    def test_layout_across_bucket_widths(self, indexes):
        dict_index, flat = indexes
        for bits in (4, 8, 10, 14, 18):
            assert flat.layout(bits) == dict_index.layout(bits)

    def test_statistics(self, indexes):
        dict_index, flat = indexes
        assert flat.distinct_minimizers == \
            dict_index.distinct_minimizers
        assert flat.total_locations == dict_index.total_locations
        assert sorted(flat.frequencies()) == \
            sorted(dict_index.frequencies())

    def test_direct_build_matches_flattened(self, mapper, indexes):
        _, flat = indexes
        direct = build_flat_index(mapper.graph, w=CONFIG.w,
                                  k=CONFIG.k,
                                  bucket_bits=CONFIG.bucket_bits)
        for name in ("bucket_starts", "min_hash", "min_loc_start",
                     "min_loc_count", "loc_node", "loc_offset"):
            assert np.array_equal(getattr(direct, name),
                                  getattr(flat, name)), name

    def test_parallel_build_matches_sequential(self, mapper, indexes):
        _, flat = indexes
        ranges = [(c.node_base, c.node_end)
                  for c in mapper.reference._contigs]
        parallel = build_flat_index(
            mapper.graph, w=CONFIG.w, k=CONFIG.k,
            bucket_bits=CONFIG.bucket_bits, jobs=2,
            node_ranges=ranges,
        )
        for name in ("bucket_starts", "min_hash", "min_loc_start",
                     "min_loc_count", "loc_node", "loc_offset"):
            assert np.array_equal(getattr(parallel, name),
                                  getattr(flat, name)), name

    def test_empty_index(self):
        flat = FlatIndex.from_occurrences(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint32),
            np.zeros(0, dtype=np.uint32), w=5, k=11, bucket_bits=6,
        )
        assert flat.frequency(42) == 0
        assert flat.lookup(42) == ()
        assert flat.lookup_cost(42).minimizers_scanned == 0
        assert flat.layout().distinct_minimizers == 0


class TestArtifactRoundTrip:
    def test_magic_sniffer(self, artifact, tmp_path):
        assert is_index_artifact(artifact)
        other = tmp_path / "not.sgidx"
        other.write_bytes(b"definitely not an artifact")
        assert not is_index_artifact(other)
        assert not is_index_artifact(tmp_path / "missing")

    def test_attach_preserves_reference(self, mapper, artifact):
        attached = Mapper.from_artifact(artifact)
        assert attached.contigs == mapper.contigs
        assert attached.reference.names == mapper.reference.names
        assert attached.reference.char_spans() == \
            mapper.reference.char_spans()
        assert attached.graph.node_count == mapper.graph.node_count
        assert attached.graph.edge_count == mapper.graph.edge_count
        for node in range(mapper.graph.node_count):
            assert attached.graph.sequence_of(node) == \
                mapper.graph.sequence_of(node)
            assert attached.graph.successors(node) == \
                mapper.graph.successors(node)

    def test_attach_index_is_memory_mapped(self, artifact):
        attached = Mapper.from_artifact(artifact)
        index = attached.engine.index
        assert isinstance(index, FlatIndex)
        base = index.min_hash
        while isinstance(base, np.ndarray) and \
                not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)
        assert not index.min_hash.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            index.min_hash[0] = 0  # read-only pages

    def test_mapping_parity(self, mapper, artifact, reads):
        attached = Mapper.from_artifact(artifact)
        assert attached.map_batch(list(reads)) == \
            mapper.map_batch(list(reads))

    def test_pair_parity(self, mapper, artifact, reference):
        rng = random.Random(31)
        seq = reference[0][1]
        pairs = []
        for i in range(8):
            start = rng.randrange(0, len(seq) - 400)
            pairs.append((
                f"p{i}", seq[start:start + 100],
                seqmod.reverse_complement(
                    seq[start + 250:start + 350]),
            ))
        attached = Mapper.from_artifact(artifact)
        assert attached.map_pairs(list(pairs)) == \
            mapper.map_pairs(list(pairs))

    def test_params_override_config(self, artifact):
        attached = Mapper.from_artifact(
            artifact, config=SeGraMConfig(w=99, k=31, bucket_bits=4))
        assert attached.engine.config.w == CONFIG.w
        assert attached.engine.config.k == CONFIG.k
        assert attached.engine.config.bucket_bits == \
            CONFIG.bucket_bits

    def test_graph_backed_contig(self, tmp_path):
        from repro.graph.genome_graph import GenomeGraph

        graph = GenomeGraph(name="toy")
        a = graph.add_node("ACGTACGTACGTACGTACGT")
        b = graph.add_node("TTTT")
        c = graph.add_node("GGGGCCCCAAAATTTTGGGG")
        graph.add_edge(a, b)
        graph.add_edge(b, c)
        graph.add_edge(a, c)
        original = Mapper(graph, config=SeGraMConfig(
            w=3, k=5, bucket_bits=8))
        path = tmp_path / "g.sgidx"
        original.save_index(path)
        attached = Mapper.from_artifact(path)
        reads = [("x", "ACGTACGTTTTTGGGGCCCC"),
                 ("y", "GGGGCCCCAAAATTTT")]
        assert attached.map_batch(list(reads)) == \
            original.map_batch(list(reads))
        assert attached.contigs == original.contigs


class TestArtifactRejection:
    """Corrupt, truncated, or stale artifacts must be refused."""

    def test_bad_magic(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[0] ^= 0xFF
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="magic"):
            load_index_artifact(artifact)

    def test_stale_version(self, artifact):
        data = bytearray(artifact.read_bytes())
        # The u16 format version sits right after the 6-byte magic.
        version = FORMAT_VERSION + 1
        data[len(MAGIC):len(MAGIC) + 2] = version.to_bytes(2, "little")
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="rebuild"):
            load_index_artifact(artifact)

    def test_corrupt_payload(self, artifact):
        data = bytearray(artifact.read_bytes())
        data[HEADER_SIZE + len(data) // 2] ^= 0x01
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="checksum"):
            load_index_artifact(artifact)

    def test_truncated_payload(self, artifact):
        data = artifact.read_bytes()
        artifact.write_bytes(data[:len(data) - 64])
        with pytest.raises(ArtifactError, match="truncated"):
            load_index_artifact(artifact)

    def test_truncated_header(self, artifact):
        artifact.write_bytes(artifact.read_bytes()[:HEADER_SIZE - 8])
        with pytest.raises(ArtifactError, match="truncated"):
            load_index_artifact(artifact)

    def test_verify_false_skips_checksum(self, artifact):
        import json
        import struct

        data = bytearray(artifact.read_bytes())
        # Flip a byte in the alignment padding between two sections:
        # the checksum breaks but every array stays intact, so
        # verify=False must still attach.
        meta_len = struct.unpack_from("<I", data, len(MAGIC) + 2)[0]
        meta = json.loads(
            bytes(data[HEADER_SIZE:HEADER_SIZE + meta_len]))
        used = sorted(
            (entry["offset"], entry["offset"] + entry["nbytes"])
            for entry in meta["arrays"].values()
        )
        pad = next((end for _, end in used
                    if end % 64 and end < len(data)), None)
        assert pad is not None, "no padding byte between sections"
        data[pad] ^= 0x01  # offsets are absolute file positions
        artifact.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="checksum"):
            load_index_artifact(artifact)
        loaded = load_index_artifact(artifact, verify=False)
        assert loaded.index.total_locations > 0


class TestPoolIdentity:
    """Fork-shard, persistent-pool, and sequential must agree."""

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_single_end(self, artifact, reads, jobs):
        attached = Mapper.from_artifact(artifact)
        sequential = attached.map_batch(list(reads))
        forked = attached.map_batch(list(reads), jobs=jobs)
        pool = attached.pool(jobs)
        try:
            pooled = attached.map_batch(list(reads), pool=pool)
        finally:
            pool.close()
        assert forked == sequential
        assert pooled == sequential

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pairs(self, artifact, reference, jobs):
        rng = random.Random(55)
        seq = reference[0][1]
        pairs = []
        for i in range(6):
            start = rng.randrange(0, len(seq) - 400)
            pairs.append((
                f"p{i}", seq[start:start + 100],
                seqmod.reverse_complement(
                    seq[start + 250:start + 350]),
            ))
        attached = Mapper.from_artifact(artifact)
        sequential = attached.map_pairs(list(pairs))
        forked = attached.map_pairs(list(pairs), jobs=jobs)
        pool = attached.pool(jobs)
        try:
            pooled = attached.map_pairs(list(pairs), pool=pool)
        finally:
            pool.close()
        assert forked == sequential
        assert pooled == sequential

    def test_pool_reuse_across_batches(self, artifact, reads):
        attached = Mapper.from_artifact(artifact)
        half = len(reads) // 2
        expected = attached.map_batch(list(reads))
        with attached.pool(2) as pool:
            first = attached.map_batch(list(reads[:half]), pool=pool)
            second = attached.map_batch(list(reads[half:]), pool=pool)
        assert first + second == expected

    def test_pool_requires_artifact(self, reference):
        fresh = Mapper(reference, config=CONFIG, max_node_length=512)
        with pytest.raises(ValueError, match="artifact"):
            fresh.pool(2)

    def test_pool_stats_merge(self, artifact, reads):
        attached = Mapper.from_artifact(artifact)
        baseline = Mapper.from_artifact(artifact)
        baseline.map_batch(list(reads))
        with attached.pool(2) as pool:
            attached.map_batch(list(reads), pool=pool)
        assert attached.stats.reads == baseline.stats.reads
        assert attached.stats.reads_mapped == \
            baseline.stats.reads_mapped
        assert attached.stats.regions_aligned == \
            baseline.stats.regions_aligned
