"""End-to-end tests for the SeGraM mapper (S2G and S2S modes)."""

from __future__ import annotations

import random

import pytest

from repro import seq as seqmod
from repro.core.alignment import replay_alignment
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.windows import WindowingConfig
from repro.graph.genome_graph import GraphError
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.reference import random_reference
from repro.sim.shortread import ShortReadProfile, simulate_short_reads
from repro.sim.variants import VariantProfile, simulate_variants


CONFIG = SeGraMConfig(
    w=10, k=15, bucket_bits=12, error_rate=0.05,
    windowing=WindowingConfig(window_size=128, overlap=48, k=16),
    max_seeds_per_read=8,
)


@pytest.fixture(scope="module")
def linear_mapper():
    rng = random.Random(21)
    reference = random_reference(40_000, rng)
    mapper = SeGraM.from_reference(reference, config=CONFIG,
                                   max_node_length=4_000)
    return reference, mapper


@pytest.fixture(scope="module")
def graph_mapper():
    rng = random.Random(22)
    reference = random_reference(30_000, rng)
    profile = VariantProfile(
        snp_rate=0.003, insertion_rate=0.0008, deletion_rate=0.0008,
        sv_rate=0.00005, sv_min=20, sv_max=100,
    )
    variants = simulate_variants(reference, rng, profile)
    mapper = SeGraM.from_reference(reference, variants, config=CONFIG,
                                   max_node_length=4_000)
    return reference, variants, mapper


class TestS2SMapping:
    def test_exact_read_maps_to_origin(self, linear_mapper):
        reference, mapper = linear_mapper
        start = 11_111
        read = reference[start:start + 200]
        result = mapper.map_read(read, "exact")
        assert result.mapped
        assert result.distance == 0
        assert result.linear_position == start
        assert replay_alignment(result.cigar, read,
                                reference[start:start + 200]) == 0

    def test_noisy_short_reads_map_near_origin(self, linear_mapper):
        reference, mapper = linear_mapper
        rng = random.Random(31)
        reads = simulate_short_reads(
            reference, 20, rng,
            ShortReadProfile.illumina(read_length=150, error_rate=0.01),
        )
        mapped_near = 0
        for read in reads:
            result = mapper.map_read(read.sequence, read.name)
            if result.mapped and result.linear_position is not None and \
                    abs(result.linear_position - read.ref_start) <= 20:
                mapped_near += 1
        assert mapped_near >= 18  # >= 90 % sensitivity at 1 % error

    def test_distance_bounded_by_channel_errors(self, linear_mapper):
        reference, mapper = linear_mapper
        rng = random.Random(41)
        fragment = reference[5_000:5_400]
        read, errors = apply_errors(fragment, ErrorModel.illumina(0.02),
                                    rng)
        result = mapper.map_read(read, "noisy")
        assert result.mapped
        assert result.distance <= errors + 2

    def test_unmappable_read(self, linear_mapper):
        _, mapper = linear_mapper
        # A read with no exact 15-mer in common with the reference is
        # overwhelmingly likely for random 15-mers; use a fixed one.
        rng = random.Random(51)
        read = random_reference(120, rng)
        result = mapper.map_read(read, "alien")
        # Either unmapped (no seeds) or mapped with a poor score.
        if result.mapped:
            assert result.distance > 10
        else:
            assert result.seeding.region_count == 0

    def test_read_validation(self, linear_mapper):
        """Reads may contain N (the repro.seq ambiguity policy) but
        genuinely invalid characters still raise."""
        _, mapper = linear_mapper
        result = mapper.map_read("ACGN" * 5, "ambiguous")
        assert not result.mapped  # too short/ambiguous to seed
        with pytest.raises(Exception):
            mapper.map_read("ACGX", "bad")


class TestS2GMapping:
    def test_backbone_read_maps_exactly(self, graph_mapper):
        reference, _, mapper = graph_mapper
        start = 7_777
        read = reference[start:start + 250]
        result = mapper.map_read(read, "backbone")
        assert result.mapped
        assert result.distance == 0

    def test_variant_read_uses_alt_path(self, graph_mapper):
        """A read containing a SNP's alt allele must align with zero
        edits through the alt node — the core benefit of S2G mapping."""
        reference, variants, mapper = graph_mapper
        built = mapper.built
        snps = [v for v in variants
                if v.end - v.start == 1 and len(v.alt) == 1
                and 2_000 < v.start < len(reference) - 2_000]
        assert snps, "fixture must contain SNPs"
        snp = snps[0]
        window = 120
        read = (reference[snp.start - window:snp.start]
                + snp.alt
                + reference[snp.end:snp.end + window])
        result = mapper.map_read(read, "variant")
        assert result.mapped
        assert result.distance == 0
        # The same read against the *linear* reference costs >= 1 edit.
        alt_nodes = set(built.alt_nodes)
        assert alt_nodes & set(result.path_nodes), \
            "alignment should route through an alt node"

    def test_path_nodes_are_connected(self, graph_mapper):
        reference, _, mapper = graph_mapper
        read = reference[3_000:3_300]
        result = mapper.map_read(read, "conn")
        assert result.mapped
        for src, dst in zip(result.path_nodes, result.path_nodes[1:]):
            assert dst in mapper.graph.successors(src)

    def test_map_reads_batch(self, graph_mapper):
        reference, _, mapper = graph_mapper
        batch = [("r1", reference[100:300]), ("r2", reference[500:700])]
        results = mapper.map_reads(batch)
        assert [r.read_name for r in results] == ["r1", "r2"]
        assert all(r.mapped for r in results)

    def test_identity_property(self, graph_mapper):
        reference, _, mapper = graph_mapper
        read = reference[9_000:9_200]
        result = mapper.map_read(read, "ident")
        assert result.identity == pytest.approx(1.0)


class TestConfigBehaviour:
    def test_requires_topologically_sorted_graph(self):
        from repro.graph.genome_graph import GenomeGraph
        graph = GenomeGraph()
        a, b = graph.add_node("ACGTACGTACGTACGTACGT"), \
            graph.add_node("ACGTACGTACGTACGTACGT")
        graph.add_edge(b, a)
        with pytest.raises(GraphError):
            SeGraM(graph)

    def test_early_exit_stops_region_scan(self, linear_mapper):
        reference, _ = linear_mapper
        config = SeGraMConfig(
            w=10, k=15, bucket_bits=12, error_rate=0.05,
            windowing=WindowingConfig(window_size=128, overlap=48, k=16),
            early_exit_distance=0,
        )
        mapper = SeGraM.from_reference(reference[:20_000], config=config,
                                       max_node_length=4_000)
        read = reference[2_000:2_200]
        result = mapper.map_read(read, "early")
        assert result.mapped and result.distance == 0

    def test_forward_wins_strand_ties(self):
        """A read whose forward and reverse-complement orientations
        both align at the same distance must report strand '+' — the
        deterministic tie-break of the select stage."""
        rng = random.Random(61)
        fragment = random_reference(300, rng)
        reference = (random_reference(3_000, rng) + fragment
                     + random_reference(3_000, rng)
                     + seqmod.reverse_complement(fragment)
                     + random_reference(3_000, rng))
        config = SeGraMConfig(
            w=10, k=15, bucket_bits=12, error_rate=0.05,
            windowing=WindowingConfig(window_size=128, overlap=48, k=16),
            both_strands=True,
        )
        mapper = SeGraM.from_reference(reference, config=config,
                                       max_node_length=4_000)
        # Both orientations hit exactly (distance 0): forward at the
        # fragment, reverse at its reverse complement.
        result = mapper.map_read(fragment, "tie")
        assert result.mapped
        assert result.distance == 0
        assert result.strand == "+"
        # The reverse-complemented read also ties — and still reports
        # '+', because its *forward* orientation hits the RC site.
        rc_result = mapper.map_read(
            seqmod.reverse_complement(fragment), "tie_rc")
        assert rc_result.mapped
        assert rc_result.distance == 0
        assert rc_result.strand == "+"

    def test_both_strands(self, linear_mapper):
        reference, _ = linear_mapper
        config = SeGraMConfig(
            w=10, k=15, bucket_bits=12, error_rate=0.05,
            windowing=WindowingConfig(window_size=128, overlap=48, k=16),
            both_strands=True, max_seeds_per_read=8,
        )
        mapper = SeGraM.from_reference(reference[:20_000], config=config,
                                       max_node_length=4_000)
        fragment = reference[4_000:4_200]
        result = mapper.map_read(seqmod.reverse_complement(fragment),
                                 "rc")
        assert result.mapped
        assert result.strand == "-"
        assert result.distance == 0
