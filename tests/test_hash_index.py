"""Tests for the three-level hash-table index."""

from __future__ import annotations

import random

import pytest

from repro.graph.genome_graph import GenomeGraph
from repro.index.hash_index import (
    BUCKET_ENTRY_BYTES,
    LOCATION_ENTRY_BYTES,
    MINIMIZER_ENTRY_BYTES,
    SeedHit,
    build_index,
)
from repro.index.minimizer import minimizers
from repro.index.occurrence import discarded_count, frequency_threshold
from repro.sim.reference import reference_with_repeats


@pytest.fixture(scope="module")
def indexed_graph():
    rng = random.Random(42)
    reference = reference_with_repeats(20_000, rng, repeat_fraction=0.15)
    graph = GenomeGraph.from_linear(reference, node_length=1000)
    index = build_index(graph, w=10, k=15, bucket_bits=12)
    return graph, index


class TestLookup:
    def test_every_indexed_minimizer_is_findable(self, indexed_graph):
        graph, index = indexed_graph
        for node in list(graph.nodes())[:3]:
            for minimizer in minimizers(node.sequence, w=10, k=15):
                hits = index.lookup(minimizer.score)
                assert SeedHit(node.node_id, minimizer.position) in hits

    def test_lookup_matches_brute_force_locations(self, indexed_graph):
        graph, index = indexed_graph
        # Collect ground truth by scanning every node.
        truth: dict[int, set[SeedHit]] = {}
        for node in graph.nodes():
            for m in minimizers(node.sequence, w=10, k=15):
                truth.setdefault(m.score, set()).add(
                    SeedHit(node.node_id, m.position))
        assert index.distinct_minimizers == len(truth)
        for hash_value, hits in list(truth.items())[:200]:
            assert set(index.lookup(hash_value)) == hits

    def test_missing_hash(self, indexed_graph):
        _, index = indexed_graph
        assert index.lookup(123456789) == ()
        assert index.frequency(123456789) == 0

    def test_frequency_equals_location_count(self, indexed_graph):
        _, index = indexed_graph
        frequencies = index.frequencies()
        assert sum(frequencies) == index.total_locations

    def test_nodes_shorter_than_k_skipped(self):
        graph = GenomeGraph()
        graph.add_node("ACGT")  # shorter than k=15
        index = build_index(graph, w=5, k=15, bucket_bits=4)
        assert index.distinct_minimizers == 0


class TestLayout:
    def test_footprint_formulas(self, indexed_graph):
        _, index = indexed_graph
        layout = index.layout()
        assert layout.first_level_bytes == \
            (1 << 12) * BUCKET_ENTRY_BYTES
        assert layout.second_level_bytes == \
            index.distinct_minimizers * MINIMIZER_ENTRY_BYTES
        assert layout.third_level_bytes == \
            index.total_locations * LOCATION_ENTRY_BYTES
        assert layout.total_bytes == (
            layout.first_level_bytes + layout.second_level_bytes
            + layout.third_level_bytes
        )

    def test_fig7_tradeoff_direction(self, indexed_graph):
        """Fewer buckets -> smaller footprint but more collisions
        (paper Fig. 7)."""
        _, index = indexed_graph
        small = index.layout(bucket_bits=6)
        large = index.layout(bucket_bits=16)
        assert small.total_bytes < large.total_bytes
        assert small.max_minimizers_per_bucket >= \
            large.max_minimizers_per_bucket

    def test_bucket_occupancy_accounts_for_all(self, indexed_graph):
        _, index = indexed_graph
        layout = index.layout(bucket_bits=1)
        # With 2 buckets the max bucket holds at least half.
        assert layout.max_minimizers_per_bucket >= \
            index.distinct_minimizers // 2

    def test_invalid_bucket_bits(self, indexed_graph):
        _, index = indexed_graph
        with pytest.raises(ValueError):
            index.layout(bucket_bits=0)


class TestLookupCost:
    def test_cost_components(self, indexed_graph):
        _, index = indexed_graph
        some_hash = next(iter(index.frequencies()))  # just a frequency
        # Pick an actual indexed hash.
        hash_value = None
        for node_hash, hits in list(index._catalog.items())[:1]:
            hash_value = node_hash
        cost = index.lookup_cost(hash_value)
        assert cost.bucket_probe == 1
        assert cost.minimizers_scanned >= 1
        assert cost.locations_fetched == index.frequency(hash_value)
        assert cost.total_accesses == (
            1 + cost.minimizers_scanned + cost.locations_fetched
        )


class TestFrequencyThreshold:
    def test_empty(self):
        assert frequency_threshold([]) == 0

    def test_uniform_distribution_discards_nothing(self):
        frequencies = [1] * 1000
        threshold = frequency_threshold(frequencies, top_fraction=0.0002)
        assert discarded_count(frequencies, threshold) == 0

    def test_top_fraction_discarded(self):
        # 10000 minimizers, 10 very frequent ones; 0.1 % -> discard 10.
        frequencies = [1] * 9990 + [1000] * 10
        threshold = frequency_threshold(frequencies, top_fraction=0.001)
        assert threshold == 1
        assert discarded_count(frequencies, threshold) == 10

    def test_discard_share_never_exceeds_fraction(self):
        rng = random.Random(3)
        frequencies = [rng.randint(1, 50) for _ in range(5000)]
        for fraction in (0.0, 0.001, 0.01, 0.1):
            threshold = frequency_threshold(frequencies, fraction)
            assert discarded_count(frequencies, threshold) <= \
                fraction * len(frequencies)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            frequency_threshold([1], top_fraction=1.0)
        with pytest.raises(ValueError):
            frequency_threshold([1], top_fraction=-0.1)

    def test_repeats_produce_frequency_skew(self, indexed_graph):
        """The planted repeats give some minimizers high frequency —
        the situation the 0.02 % filter exists for."""
        _, index = indexed_graph
        frequencies = index.frequencies()
        assert max(frequencies) >= 3
