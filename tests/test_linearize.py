"""Tests for character-level linearization and hop statistics."""

from __future__ import annotations

import pytest

from repro.graph.builder import Variant, build_graph
from repro.graph.genome_graph import GenomeGraph, GraphError
from repro.graph.linearize import (
    hop_coverage,
    hop_length_distribution,
    linearize,
)


def bubble() -> GenomeGraph:
    """AC -> (G | T) -> AC, topologically sorted."""
    graph = GenomeGraph()
    a = graph.add_node("AC")
    b = graph.add_node("G")
    c = graph.add_node("T")
    d = graph.add_node("AC")
    graph.add_edge(a, b)
    graph.add_edge(a, c)
    graph.add_edge(b, d)
    graph.add_edge(c, d)
    return graph


class TestLinearize:
    def test_chars_concatenated_in_node_order(self):
        lin = linearize(bubble())
        assert lin.chars == "ACGTAC"

    def test_within_node_successors(self):
        lin = linearize(bubble())
        assert lin.successors[0] == (1,)  # A -> C within node 0

    def test_branch_successors(self):
        lin = linearize(bubble())
        # C (last char of node 0) -> G (pos 2) and T (pos 3).
        assert lin.successors[1] == (2, 3)

    def test_hop_into_merge_node(self):
        lin = linearize(bubble())
        # G (pos 2) -> A of node 3 (pos 4): distance 2 hop.
        assert lin.successors[2] == (4,)
        # T (pos 3) -> A (pos 4): adjacent.
        assert lin.successors[3] == (4,)

    def test_last_char_no_successors(self):
        lin = linearize(bubble())
        assert lin.successors[5] == ()

    def test_node_ids_and_offsets(self):
        lin = linearize(bubble())
        assert lin.node_ids == [0, 0, 1, 2, 3, 3]
        assert lin.node_offsets == [0, 1, 0, 0, 0, 1]

    def test_hop_counting(self):
        lin = linearize(bubble())
        # Inter-node hops with distance > 1: C->T (2), G->A (2).
        assert lin.total_hops == 2
        assert lin.dropped_hops == 0
        assert lin.hop_coverage == 1.0

    def test_hop_limit_drops_long_hops(self):
        lin = linearize(bubble(), hop_limit=1)
        assert lin.dropped_hops == 2
        assert lin.successors[1] == (2,)   # C->T dropped
        assert lin.successors[2] == ()     # G->A dropped
        assert lin.hop_coverage == 0.0

    def test_hop_limit_validation(self):
        with pytest.raises(GraphError):
            linearize(bubble(), hop_limit=0)

    def test_requires_topological_sort(self):
        graph = GenomeGraph()
        a, b = graph.add_node("A"), graph.add_node("C")
        graph.add_edge(b, a)
        with pytest.raises(GraphError):
            linearize(graph)

    def test_linear_graph_is_chain(self):
        graph = GenomeGraph.from_linear("ACGTACGT", node_length=3)
        lin = linearize(graph)
        assert lin.is_chain()
        assert lin.total_hops == 0


class TestSlice:
    def test_slice_clips_successors(self):
        lin = linearize(bubble())
        window = lin.slice(0, 4)  # ACGT, hop G->A (pos 4) clipped
        assert window.chars == "ACGT"
        assert window.successors[2] == ()
        assert window.successors[1] == (2, 3)

    def test_slice_positions_rebased(self):
        lin = linearize(bubble())
        window = lin.slice(2, 6)
        assert window.chars == "GTAC"
        assert window.successors[0] == (2,)  # G -> A rebased

    def test_invalid_slice_rejected(self):
        lin = linearize(bubble())
        with pytest.raises(GraphError):
            lin.slice(3, 3)
        with pytest.raises(GraphError):
            lin.slice(0, 99)


class TestHopBits:
    def test_matrix_matches_successors(self):
        lin = linearize(bubble())
        bits = lin.hopbits()
        for position, succs in enumerate(lin.successors):
            for succ in succs:
                assert bits[position, succ]
        assert bits.sum() == sum(len(s) for s in lin.successors)

    def test_size_guard(self):
        lin = linearize(bubble())
        with pytest.raises(GraphError):
            lin.hopbits(max_size=2)


class TestHopStatistics:
    def test_distribution_of_bubble(self):
        histogram = hop_length_distribution(bubble())
        assert histogram == {2: 2}

    def test_linear_graph_has_no_hops(self):
        graph = GenomeGraph.from_linear("ACGTACGT", node_length=2)
        assert hop_length_distribution(graph) == {}
        assert hop_coverage(graph, [1, 4]) == {1: 1.0, 4: 1.0}

    def test_coverage_monotone_in_limit(self, small_graph):
        limits = list(range(1, 20))
        coverage = hop_coverage(small_graph, limits)
        values = [coverage[l] for l in limits]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_snp_bubbles_have_short_hops(self):
        # Paper Fig. 13 rationale: SNPs create hops of length 2.
        built = build_graph("ACGTACGTACGT", [Variant(5, 6, "T")])
        histogram = hop_length_distribution(built.graph)
        assert set(histogram) == {2}

    def test_sv_creates_long_hop(self):
        # A 6-base deletion creates a hop skipping 6 characters.
        built = build_graph("ACGTACGTACGT", [Variant(3, 9, "")])
        histogram = hop_length_distribution(built.graph)
        assert max(histogram) == 7
