"""Tests for SAM and GAF mapping-output formats."""

from __future__ import annotations

import io
import random

import pytest

from repro import seq as seqmod
from repro.core.mapper import SeGraM, SeGraMConfig
from repro.core.windows import WindowingConfig
from repro.io.gaf import (
    GafFormatError,
    read_gaf,
    result_to_gaf,
    validate_gaf_record,
    write_gaf,
)
from repro.io.sam import (
    FLAG_UNMAPPED,
    SamFormatError,
    SamRecord,
    SamWriter,
    read_sam,
    result_to_sam,
    validate_sam_record,
    write_sam,
)
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants


@pytest.fixture(scope="module")
def mapped_results():
    rng = random.Random(64)
    reference = random_reference(20_000, rng)
    variants = simulate_variants(
        reference, rng,
        VariantProfile(snp_rate=0.003, insertion_rate=0.0005,
                       deletion_rate=0.0005, sv_rate=0.0),
    )
    mapper = SeGraM.from_reference(
        reference, variants,
        config=SeGraMConfig(
            w=10, k=15, bucket_bits=12, error_rate=0.02,
            windowing=WindowingConfig(window_size=128, overlap=48,
                                      k=16),
            max_seeds_per_read=4,
        ),
        max_node_length=2_000,
    )
    reads = [(f"r{i}", reference[i * 900:i * 900 + 200])
             for i in range(1, 6)]
    results = [(mapper.map_read(seq, name), seq)
               for name, seq in reads]
    return mapper, reference, results


class TestSam:
    def test_mapped_record_fields(self, mapped_results):
        _, reference, results = mapped_results
        result, seq = results[0]
        record = result_to_sam(result, seq, "chr1")
        assert record.rname == "chr1"
        assert record.pos == result.linear_position + 1
        assert not record.is_unmapped
        validate_sam_record(record)

    def test_unmapped_record(self):
        from repro.core.mapper import MappingResult
        result = MappingResult(read_name="r", read_length=4,
                               mapped=False)
        record = result_to_sam(result, "ACGT", "chr1")
        assert record.is_unmapped
        assert record.flag & FLAG_UNMAPPED
        assert record.cigar == "*"

    def test_roundtrip(self, mapped_results, tmp_path):
        _, reference, results = mapped_results
        records = [result_to_sam(r, seq, "chr1")
                   for r, seq in results]
        path = tmp_path / "out.sam"
        write_sam(path, records, "chr1", len(reference))
        parsed = read_sam(path)
        assert parsed == records

    def test_header_written(self, mapped_results):
        _, reference, results = mapped_results
        buffer = io.StringIO()
        write_sam(buffer, [], "chr1", len(reference))
        text = buffer.getvalue()
        assert "@HD" in text
        assert f"LN:{len(reference)}" in text

    def test_nm_tag_mismatch_rejected(self):
        record = SamRecord(qname="r", flag=0, rname="chr1", pos=1,
                           mapq=60, cigar="4=", seq="ACGT",
                           edit_distance=2)
        with pytest.raises(SamFormatError):
            validate_sam_record(record)

    def test_cigar_seq_mismatch_rejected(self):
        record = SamRecord(qname="r", flag=0, rname="chr1", pos=1,
                           mapq=60, cigar="3=", seq="ACGT")
        with pytest.raises(SamFormatError):
            validate_sam_record(record)

    def test_short_line_rejected(self):
        with pytest.raises(SamFormatError):
            read_sam(io.StringIO("r1\t0\tchr1\n"))

    def test_qname_with_tab_rejected(self):
        # A tab inside QNAME would shift every downstream SAM column.
        from repro.core.mapper import MappingResult
        result = MappingResult(read_name="r1\textra", read_length=4,
                               mapped=False)
        with pytest.raises(SamFormatError, match="QNAME"):
            result_to_sam(result, "ACGT", "chr1")

    def test_qname_with_space_rejected(self):
        from repro.core.mapper import MappingResult
        result = MappingResult(read_name="r1 extra", read_length=4,
                               mapped=False)
        with pytest.raises(SamFormatError, match="QNAME"):
            result_to_sam(result, "ACGT", "chr1")

    def test_rname_with_whitespace_rejected(self, mapped_results):
        _, _, results = mapped_results
        result, seq = results[0]
        with pytest.raises(SamFormatError, match="RNAME"):
            result_to_sam(result, seq, "chr 1")


class TestOrientationAndAmbiguity:
    """Property/round-trip tests for reverse-strand and N-containing
    reads through the SAM and GAF writers (randomized, seeded)."""

    @pytest.fixture(scope="class")
    def mapper_and_reference(self):
        rng = random.Random(0x0A1)
        reference = random_reference(12_000, rng)
        mapper = SeGraM.from_reference(
            reference,
            config=SeGraMConfig(
                w=10, k=15, bucket_bits=12, error_rate=0.05,
                windowing=WindowingConfig(window_size=128,
                                          overlap=48, k=16),
                max_seeds_per_read=4, both_strands=True,
                early_exit_distance=4,
            ),
            name="chrP",
        )
        return mapper, reference

    def test_reverse_strand_seq_round_trip(self, mapper_and_reference):
        """For every reverse-strand mapping, the SAM SEQ must be the
        reverse complement of the input read, the CIGAR must consume
        it, and the record must survive a write/read round trip."""
        mapper, reference = mapper_and_reference
        rng = random.Random(0xE5)
        reverse_seen = 0
        records = []
        reads = []
        for index in range(8):
            start = rng.randrange(0, len(reference) - 150)
            fragment = reference[start:start + 150]
            read = seqmod.reverse_complement(fragment) \
                if index % 2 else fragment
            result = mapper.map_read(read, f"prop_{index}")
            record = result_to_sam(result, read, "chrP")
            validate_sam_record(record)
            if record.is_reverse:
                reverse_seen += 1
                assert record.seq == seqmod.reverse_complement(read)
            elif not record.is_unmapped:
                assert record.seq == read
            records.append(record)
            reads.append(read)
        assert reverse_seen > 0
        buffer = io.StringIO()
        write_sam(buffer, records, "chrP", len(reference))
        assert read_sam(io.StringIO(buffer.getvalue())) == records

    def test_n_reads_map_and_round_trip(self, mapper_and_reference):
        """Reads with a few N bases still map (seeding skips N
        k-mers, each N costs one edit) and their SAM/GAF records
        round-trip with the Ns preserved."""
        from repro.io.gaf import result_to_gaf, validate_gaf_record

        mapper, reference = mapper_and_reference
        rng = random.Random(0xA2)
        mapped_seen = 0
        for index in range(6):
            start = rng.randrange(0, len(reference) - 150)
            read = list(reference[start:start + 150])
            for _ in range(3):
                read[rng.randrange(len(read))] = "N"
            if index % 2:
                read = list(seqmod.reverse_complement("".join(read)))
            read = "".join(read)
            result = mapper.map_read(read, f"nprop_{index}")
            if not result.mapped:
                continue
            mapped_seen += 1
            # Each N costs one edit against the ACGT reference; a
            # little slack for window-boundary drift.
            assert result.distance <= 6
            record = result_to_sam(result, read, "chrP")
            validate_sam_record(record)
            expected = seqmod.reverse_complement(read) \
                if record.is_reverse else read
            assert record.seq == expected
            assert record.seq.count("N") == 3
            buffer = io.StringIO()
            write_sam(buffer, [record], "chrP", len(reference))
            assert read_sam(io.StringIO(buffer.getvalue())) == [record]
            gaf = result_to_gaf(result, mapper.graph, read)
            assert gaf is not None
            validate_gaf_record(gaf, mapper.graph)
        assert mapped_seen > 0

    def test_all_n_read_is_unmapped(self, mapper_and_reference):
        mapper, _ = mapper_and_reference
        result = mapper.map_read("N" * 60, "all_n")
        assert not result.mapped
        record = result_to_sam(result, "N" * 60, "chrP")
        assert record.is_unmapped


class TestGaf:
    def test_mapped_record(self, mapped_results):
        mapper, _, results = mapped_results
        result, seq = results[0]
        record = result_to_gaf(result, mapper.graph, seq)
        assert record is not None
        assert record.query_length == len(seq)
        assert record.path == result.path_nodes
        validate_gaf_record(record, mapper.graph)

    def test_unmapped_returns_none(self, mapped_results):
        from repro.core.mapper import MappingResult
        mapper, _, _ = mapped_results
        result = MappingResult(read_name="r", read_length=4,
                               mapped=False)
        assert result_to_gaf(result, mapper.graph, "ACGT") is None

    def test_roundtrip(self, mapped_results, tmp_path):
        mapper, _, results = mapped_results
        records = [result_to_gaf(r, mapper.graph, seq)
                   for r, seq in results]
        records = [r for r in records if r is not None]
        path = tmp_path / "out.gaf"
        write_gaf(path, records)
        parsed = read_gaf(path)
        assert parsed == records

    def test_path_string_format(self, mapped_results):
        mapper, _, results = mapped_results
        record = result_to_gaf(results[0][0], mapper.graph,
                               results[0][1])
        assert record.path_string.startswith(">")
        assert record.path_string.count(">") == len(record.path)

    def test_validation_rejects_bad_edge(self, mapped_results):
        mapper, _, results = mapped_results
        record = result_to_gaf(results[0][0], mapper.graph,
                               results[0][1])
        bad = type(record)(
            query_name=record.query_name,
            query_length=record.query_length,
            path=(0, mapper.graph.node_count - 1)
            if mapper.graph.node_count - 1 not in
            mapper.graph.successors(0) else (0, 0),
            path_length=record.path_length,
            path_start=record.path_start,
            path_end=record.path_end,
            matches=record.matches,
            block_length=record.block_length,
            mapq=record.mapq,
            cigar=record.cigar,
        )
        with pytest.raises(GafFormatError):
            validate_gaf_record(bad, mapper.graph)

    def test_reverse_path_rejected(self):
        line = "r\t4\t0\t4\t+\t<3<2\t8\t0\t4\t4\t4\t60"
        with pytest.raises(GafFormatError):
            read_gaf(io.StringIO(line))

    def test_short_line_rejected(self):
        with pytest.raises(GafFormatError):
            read_gaf(io.StringIO("r\t4\t0\t4\t+\t>1\n"))


class TestSamWriterSorted:
    """The streaming SamWriter's coordinate sort: header, ordering,
    stability, and the external-merge spill path."""

    CONTIGS = [("chr1", 6_000), ("chr2", 4_000)]

    def _records(self, count, seed=11):
        rng = random.Random(seed)
        records = []
        for i in range(count):
            rname = self.CONTIGS[rng.randrange(2)][0]
            # Deliberately collide positions so the (rank, pos,
            # input-order) stability tiebreak is exercised.
            pos = rng.randrange(1, 40)
            records.append(SamRecord(qname=f"q{i}", flag=0,
                                     rname=rname, pos=pos, mapq=60,
                                     cigar="4=", seq="ACGT",
                                     edit_distance=0))
        return records

    def _render(self, records, sort, run_size):
        buffer = io.StringIO()
        with SamWriter(buffer, contigs=self.CONTIGS, sort=sort,
                       run_size=run_size) as writer:
            for record in records:
                writer.write(record)
        return buffer.getvalue()

    def test_unsorted_writer_matches_write_sam(self):
        records = self._records(20)
        streamed = self._render(records, sort=False, run_size=5)
        batch = io.StringIO()
        write_sam(batch, records, contigs=self.CONTIGS)
        assert streamed == batch.getvalue()
        assert "SO:unknown" in streamed

    def test_sorted_header_and_order(self):
        records = self._records(30)
        text = self._render(records, sort=True, run_size=1_000)
        assert text.splitlines()[0] == \
            "@HD\tVN:1.6\tSO:coordinate"
        parsed = read_sam(io.StringIO(text))
        rank = {name: i for i, (name, _) in enumerate(self.CONTIGS)}
        keys = [(rank[r.rname], r.pos) for r in parsed]
        assert keys == sorted(keys)
        assert sorted(r.qname for r in parsed) == \
            sorted(r.qname for r in records)

    def test_tiny_run_size_spill_matches_in_memory(self):
        # run_size=7 over 60 records forces several on-disk runs;
        # the k-way merge must reproduce the single-buffer sort
        # byte for byte (including input-order stability for equal
        # (rank, pos) keys).
        records = self._records(60)
        spilled = self._render(records, sort=True, run_size=7)
        in_memory = self._render(records, sort=True,
                                 run_size=10_000)
        assert spilled == in_memory

    def test_unmapped_records_sort_last(self):
        records = self._records(6)
        records.insert(0, SamRecord(qname="lost",
                                    flag=FLAG_UNMAPPED, rname="*",
                                    pos=0, mapq=0, cigar="*",
                                    seq="ACGT"))
        text = self._render(records, sort=True, run_size=3)
        parsed = read_sam(io.StringIO(text))
        assert parsed[-1].qname == "lost"

    def test_unknown_rname_rejected_when_sorting(self):
        writer = SamWriter(io.StringIO(), contigs=self.CONTIGS,
                           sort=True)
        record = SamRecord(qname="q", flag=0, rname="chrX", pos=1,
                           mapq=60, cigar="4=", seq="ACGT")
        with pytest.raises(SamFormatError, match="chrX"):
            writer.write(record)

    def test_run_size_validated(self):
        with pytest.raises(ValueError):
            SamWriter(io.StringIO(), contigs=self.CONTIGS,
                      run_size=0)


class TestQualifiedGaf:
    """Contig-qualified path segments (``<contig>#<node-id>``):
    emission, parse round-trip, and reference-set validation."""

    @pytest.fixture(scope="class")
    def refs_results(self, mapped_results):
        from repro.api import as_reference_set

        mapper, reference, results = mapped_results
        refs = as_reference_set(mapper.graph, name="chr1")
        return mapper, refs, results

    def test_result_to_gaf_emits_qualified_segments(self,
                                                    refs_results):
        mapper, refs, results = refs_results
        result, seq = results[0]
        record = result_to_gaf(result, mapper.graph, seq, refs=refs)
        contig = refs.contig_of_node(result.path_nodes[0])
        assert record.segments == tuple(
            f"{contig}#{node}" for node in result.path_nodes)
        assert record.path_string.startswith(f">{contig}#")
        validate_gaf_record(record, mapper.graph, refs=refs)

    def test_qualified_byte_round_trip(self, refs_results,
                                       tmp_path):
        mapper, refs, results = refs_results
        records = [result_to_gaf(r, mapper.graph, seq, refs=refs)
                   for r, seq in results]
        records = [r for r in records if r is not None]
        path = tmp_path / "q.gaf"
        write_gaf(path, records)
        first = path.read_bytes()
        parsed = read_gaf(path)
        assert parsed == records
        assert all(r.segments for r in parsed)
        write_gaf(tmp_path / "q2.gaf", parsed)
        assert (tmp_path / "q2.gaf").read_bytes() == first

    def test_bare_paths_parse_without_segments(self,
                                               refs_results,
                                               tmp_path):
        mapper, _, results = refs_results
        record = result_to_gaf(results[0][0], mapper.graph,
                               results[0][1])
        write_gaf(tmp_path / "bare.gaf", [record])
        parsed = read_gaf(tmp_path / "bare.gaf")
        assert parsed[0].segments == ()

    def test_validation_rejects_wrong_contig(self, refs_results):
        mapper, refs, results = refs_results
        result, seq = results[0]
        record = result_to_gaf(result, mapper.graph, seq, refs=refs)
        forged = tuple(f"chrBogus#{node}"
                       for node in record.path)
        bad = type(record)(
            query_name=record.query_name,
            query_length=record.query_length,
            path=record.path,
            path_length=record.path_length,
            path_start=record.path_start,
            path_end=record.path_end,
            matches=record.matches,
            block_length=record.block_length,
            mapq=record.mapq,
            cigar=record.cigar,
            segments=forged,
        )
        validate_gaf_record(bad, mapper.graph)  # graph-only: fine
        with pytest.raises(GafFormatError,
                           match="does not match the reference"):
            validate_gaf_record(bad, mapper.graph, refs=refs)

    def test_segment_path_length_mismatch_rejected(self,
                                                   refs_results):
        mapper, refs, results = refs_results
        record = result_to_gaf(results[0][0], mapper.graph,
                               results[0][1], refs=refs)
        with pytest.raises(ValueError, match="segments"):
            type(record)(
                query_name=record.query_name,
                query_length=record.query_length,
                path=record.path,
                path_length=record.path_length,
                path_start=record.path_start,
                path_end=record.path_end,
                matches=record.matches,
                block_length=record.block_length,
                mapq=record.mapq,
                cigar=record.cigar,
                segments=record.segments[:-1] or ("chr1#0",) * 9,
            )

    @pytest.mark.parametrize("segment", ["chr1#", "#5", "chr1#x",
                                         "5#chr1#y", "chr1"])
    def test_malformed_segment_rejected(self, segment):
        line = (f"r\t4\t0\t4\t+\t>{segment}\t8\t0\t4\t4\t4\t60\n")
        with pytest.raises(GafFormatError,
                           match="neither a node ID"):
            read_gaf(io.StringIO(line))
