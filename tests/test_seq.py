"""Tests for the 2-bit DNA alphabet utilities."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import seq

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncoding:
    def test_encode_base_values_match_paper(self):
        # Paper Section 5: A:00, C:01, G:10, T:11.
        assert seq.encode_base("A") == 0
        assert seq.encode_base("C") == 1
        assert seq.encode_base("G") == 2
        assert seq.encode_base("T") == 3

    def test_encode_base_accepts_lowercase(self):
        assert seq.encode_base("a") == 0
        assert seq.encode_base("t") == 3

    def test_encode_base_rejects_invalid(self):
        with pytest.raises(seq.InvalidBaseError):
            seq.encode_base("N")

    def test_decode_base_roundtrip(self):
        for code in range(4):
            assert seq.encode_base(seq.decode_base(code)) == code

    def test_decode_base_rejects_out_of_range(self):
        with pytest.raises(seq.InvalidBaseError):
            seq.decode_base(4)
        with pytest.raises(seq.InvalidBaseError):
            seq.decode_base(-1)

    @given(dna)
    def test_encode_decode_roundtrip(self, sequence):
        assert seq.decode(seq.encode(sequence)) == sequence


class TestPacking:
    def test_pack_known_value(self):
        # ACGT -> 00 01 10 11 -> 0b00011011 = 27.
        assert seq.pack("ACGT") == 0b00011011

    def test_pack_empty(self):
        assert seq.pack("") == 0

    @given(dna.filter(lambda s: len(s) > 0))
    def test_pack_unpack_roundtrip(self, sequence):
        assert seq.unpack(seq.pack(sequence), len(sequence)) == sequence

    def test_unpack_negative_length_rejected(self):
        with pytest.raises(ValueError):
            seq.unpack(0, -1)


class TestComplement:
    def test_complement_pairs(self):
        assert seq.complement("ACGT") == "TGCA"

    def test_reverse_complement_known(self):
        assert seq.reverse_complement("AACGTT") == "AACGTT"
        assert seq.reverse_complement("AAAC") == "GTTT"

    @given(dna)
    def test_reverse_complement_involution(self, sequence):
        assert seq.reverse_complement(
            seq.reverse_complement(sequence)
        ) == sequence

    def test_complement_rejects_invalid(self):
        with pytest.raises(seq.InvalidBaseError):
            seq.complement("AXG")


class TestValidate:
    def test_validate_uppercases(self):
        assert seq.validate("acgt") == "ACGT"

    def test_validate_reports_position(self):
        with pytest.raises(seq.InvalidBaseError, match="position 2"):
            seq.validate("ACNT")

    def test_is_valid(self):
        assert seq.is_valid("ACGT")
        assert not seq.is_valid("ACGU")


class TestHelpers:
    def test_random_sequence_length_and_alphabet(self):
        rng = random.Random(1)
        out = seq.random_sequence(500, rng)
        assert len(out) == 500
        assert set(out) <= set("ACGT")

    def test_random_sequence_deterministic(self):
        assert seq.random_sequence(50, random.Random(7)) == \
            seq.random_sequence(50, random.Random(7))

    def test_hamming_distance(self):
        assert seq.hamming_distance("ACGT", "ACGA") == 1
        assert seq.hamming_distance("AAAA", "TTTT") == 4

    def test_hamming_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            seq.hamming_distance("ACG", "AC")


class TestAmbiguityPolicy:
    """The unified N policy (see the repro.seq module docstring)."""

    def test_encode_rejects_n(self):
        with pytest.raises(seq.InvalidBaseError):
            seq.encode("ACNT")

    def test_is_valid_read_side(self):
        assert not seq.is_valid("ACNT")
        assert seq.is_valid("ACNT", allow_ambiguous=True)
        assert seq.is_valid("acnt", allow_ambiguous=True)
        assert not seq.is_valid("ACXT", allow_ambiguous=True)

    def test_validate_read_side(self):
        assert seq.validate("acNt", allow_ambiguous=True) == "ACNT"
        with pytest.raises(seq.InvalidBaseError, match="position 2"):
            seq.validate("ACNT")
        with pytest.raises(seq.InvalidBaseError, match="position 1"):
            seq.validate("AXNT", allow_ambiguous=True)

    def test_complement_maps_n_to_n(self):
        assert seq.complement("ACGTN") == "TGCAN"
        assert seq.reverse_complement("ACGTN") == "NACGT"

    def test_is_ambiguous(self):
        assert seq.is_ambiguous("N")
        assert seq.is_ambiguous("n")
        assert not seq.is_ambiguous("A")
