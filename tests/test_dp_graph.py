"""Tests for the PaSGAL-style graph DP aligner."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_graph import (
    GraphAlignmentSizeError,
    graph_align,
    graph_distance,
)
from repro.align.dp_linear import semiglobal_distance
from repro.core.alignment import replay_alignment
from repro.graph.builder import Variant, build_graph
from repro.graph.genome_graph import GenomeGraph
from repro.graph.linearize import linearize
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


def chain(text: str):
    return linearize(GenomeGraph.from_linear(text, node_length=3))


def bubble_graph():
    """ACGT -> (T | G) -> ACGT."""
    built = build_graph("ACGTTACGT", [Variant(4, 5, "G")])
    return linearize(built.graph)


class TestChainEquivalence:
    """On a chain graph, graph DP == linear fitting DP."""

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_distance_matches_linear(self, text, pattern):
        expected, _ = semiglobal_distance(text, pattern)
        distance, _ = graph_distance(chain(text), pattern)
        assert distance == expected

    @settings(max_examples=100, deadline=None)
    @given(dna, dna)
    def test_align_replays(self, text, pattern):
        lin = chain(text)
        result = graph_align(lin, pattern)
        assert replay_alignment(result.cigar, pattern, result.reference) \
            == result.distance
        distance, _ = graph_distance(lin, pattern)
        assert result.distance == distance


class TestGraphSemantics:
    def test_variant_path_aligns_exactly(self):
        lin = bubble_graph()
        # The alt path spells ACGTGACGT.
        distance, _ = graph_distance(lin, "ACGTGACGT")
        assert distance == 0
        # The backbone path spells ACGTTACGT.
        distance, _ = graph_distance(lin, "ACGTTACGT")
        assert distance == 0

    def test_non_path_sequence_costs_edits(self):
        lin = bubble_graph()
        distance, _ = graph_distance(lin, "ACGTCACGT")
        assert distance == 1

    def test_alignment_path_follows_graph_edges(self):
        lin = bubble_graph()
        result = graph_align(lin, "ACGTGACGT")
        assert result.distance == 0
        # Consecutive consumed positions must be graph successors.
        for src, dst in zip(result.path, result.path[1:]):
            assert dst in lin.successors[src]

    def test_deletion_hop_taken(self):
        # Deleting "TT" gives the haplotype ACGTACGT.
        built = build_graph("ACGTTTACGT", [Variant(4, 6, "")])
        lin = linearize(built.graph)
        result = graph_align(lin, "ACGTACGT")
        assert result.distance == 0

    def test_path_spells_reference_field(self):
        lin = bubble_graph()
        result = graph_align(lin, "ACGTGACG")
        assert result.reference == \
            "".join(lin.chars[p] for p in result.path)

    def test_empty_read_rejected(self):
        with pytest.raises(ValueError):
            graph_distance(bubble_graph(), "")

    def test_size_guard(self):
        with pytest.raises(GraphAlignmentSizeError):
            graph_align(bubble_graph(), "ACGT", max_cells=4)

    def test_pure_insertion_degenerate(self):
        lin = chain("A")
        distance, _ = graph_distance(lin, "TTTT")
        # 4 read chars vs 1 ref char: best is substitution+insertions
        # or pure insertions; both cost 4.
        assert distance == 4


class TestRandomGraphs:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_variant_haplotype_reads_align_with_few_edits(self, seed):
        rng = random.Random(seed)
        reference = random_reference(rng.randint(60, 200), rng)
        profile = VariantProfile(
            snp_rate=0.03, insertion_rate=0.01, deletion_rate=0.01,
            sv_rate=0.0, small_indel_max=3,
        )
        variants = simulate_variants(reference, rng, profile)
        built = build_graph(reference, variants)
        lin = linearize(built.graph)
        # A read copied straight off the backbone must align exactly.
        start = rng.randint(0, max(0, len(reference) - 30))
        read = reference[start:start + 30]
        if read:
            distance, _ = graph_distance(lin, read)
            assert distance == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_traceback_always_replays(self, seed):
        rng = random.Random(seed)
        reference = random_reference(rng.randint(40, 120), rng)
        profile = VariantProfile(
            snp_rate=0.05, insertion_rate=0.02, deletion_rate=0.02,
            sv_rate=0.0, small_indel_max=3,
        )
        variants = simulate_variants(reference, rng, profile)
        built = build_graph(reference, variants)
        lin = linearize(built.graph)
        read = "".join(rng.choice("ACGT") for _ in range(rng.randint(5, 40)))
        result = graph_align(lin, read)
        assert replay_alignment(result.cigar, read, result.reference) == \
            result.distance
        distance, _ = graph_distance(lin, read)
        assert result.distance == distance
