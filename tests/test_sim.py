"""Tests for the data-simulation substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_linear import edit_distance
from repro.graph.builder import build_graph
from repro.sim.errors import ErrorModel, apply_errors
from repro.sim.graphsim import sample_path, simulate_graph_reads
from repro.sim.longread import LongReadProfile, simulate_long_reads
from repro.sim.reference import random_reference, reference_with_repeats
from repro.sim.shortread import ShortReadProfile, simulate_short_reads
from repro.sim.variants import (
    VariantProfile,
    apply_variants,
    simulate_variants,
)


class TestErrorModel:
    def test_profiles_sum_to_one(self):
        for model in (ErrorModel.pacbio(), ErrorModel.nanopore(),
                      ErrorModel.illumina()):
            total = (model.mismatch_fraction + model.insertion_fraction
                     + model.deletion_fraction)
            assert total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorModel(1.5)
        with pytest.raises(ValueError):
            ErrorModel(0.1, 0.5, 0.5, 0.5)

    def test_zero_rate_is_identity(self):
        rng = random.Random(0)
        sequence = random_reference(500, rng)
        noisy, errors = apply_errors(sequence, ErrorModel(0.0), rng)
        assert noisy == sequence
        assert errors == 0

    def test_error_count_close_to_rate(self):
        rng = random.Random(1)
        sequence = random_reference(20_000, rng)
        noisy, errors = apply_errors(sequence, ErrorModel.pacbio(0.10),
                                     rng)
        assert errors == pytest.approx(2_000, rel=0.15)

    def test_edit_distance_bounded_by_error_count(self):
        rng = random.Random(2)
        sequence = random_reference(800, rng)
        noisy, errors = apply_errors(sequence, ErrorModel.nanopore(0.08),
                                     rng)
        assert edit_distance(sequence, noisy) <= errors

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_deterministic_given_seed(self, seed):
        sequence = random_reference(200, random.Random(3))
        a = apply_errors(sequence, ErrorModel.pacbio(0.1),
                         random.Random(seed))
        b = apply_errors(sequence, ErrorModel.pacbio(0.1),
                         random.Random(seed))
        assert a == b


class TestReference:
    def test_length_and_alphabet(self):
        rng = random.Random(4)
        ref = random_reference(1_234, rng)
        assert len(ref) == 1_234
        assert set(ref) <= set("ACGT")

    def test_repeats_increase_kmer_multiplicity(self):
        rng = random.Random(5)
        plain = random_reference(30_000, rng)
        repeated = reference_with_repeats(30_000, random.Random(5),
                                          repeat_fraction=0.3)

        def max_kmer_count(text: str) -> int:
            counts: dict[str, int] = {}
            for i in range(0, len(text) - 50, 10):
                kmer = text[i:i + 50]
                counts[kmer] = counts.get(kmer, 0) + 1
            return max(counts.values())

        assert max_kmer_count(repeated) > max_kmer_count(plain)

    def test_validation(self):
        rng = random.Random(6)
        with pytest.raises(ValueError):
            random_reference(0, rng)
        with pytest.raises(ValueError):
            reference_with_repeats(100, rng, repeat_fraction=1.5)
        with pytest.raises(ValueError):
            reference_with_repeats(100, rng, repeat_length=5)


class TestVariants:
    def test_non_overlapping_and_sorted(self):
        rng = random.Random(7)
        reference = random_reference(50_000, rng)
        variants = simulate_variants(reference, rng)
        for left, right in zip(variants, variants[1:]):
            assert left.end <= right.start

    def test_rates_roughly_respected(self):
        rng = random.Random(8)
        reference = random_reference(200_000, rng)
        profile = VariantProfile()
        variants = simulate_variants(reference, rng, profile)
        snps = sum(1 for v in variants if v.is_snp)
        assert snps == pytest.approx(
            profile.snp_rate * len(reference), rel=0.25,
        )

    def test_apply_variants_spells_haplotype(self):
        rng = random.Random(9)
        reference = random_reference(2_000, rng)
        variants = simulate_variants(
            reference, rng,
            VariantProfile(snp_rate=0.02, insertion_rate=0.005,
                           deletion_rate=0.005, sv_rate=0.0),
        )
        haplotype = apply_variants(reference, variants)
        snp_count = sum(1 for v in variants if v.is_snp)
        # Each SNP contributes exactly one mismatch.
        if variants and all(v.is_snp for v in variants):
            assert edit_distance(reference, haplotype) == snp_count

    def test_apply_variants_rejects_overlap(self):
        from repro.graph.builder import Variant
        with pytest.raises(ValueError):
            apply_variants("ACGTACGT", [Variant(2, 5, "A"),
                                        Variant(4, 6, "T")])

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            VariantProfile(snp_rate=0.6)
        with pytest.raises(ValueError):
            VariantProfile(sv_min=10, sv_max=5)


class TestReadSimulators:
    def test_long_read_truth_coordinates(self):
        rng = random.Random(10)
        reference = random_reference(50_000, rng)
        reads = simulate_long_reads(
            reference, 10, rng, LongReadProfile.pacbio(0.05),
        )
        assert len(reads) == 10
        for read in reads:
            assert 0 <= read.ref_start < read.ref_end <= len(reference)
            fragment = reference[read.ref_start:read.ref_end]
            assert edit_distance(fragment, read.sequence) <= \
                read.errors

    def test_long_read_error_rate(self):
        rng = random.Random(11)
        reference = random_reference(60_000, rng)
        reads = simulate_long_reads(
            reference, 5, rng,
            LongReadProfile.nanopore(0.10, read_length=10_000),
        )
        total_errors = sum(r.errors for r in reads)
        assert total_errors == pytest.approx(5 * 10_000 * 0.10, rel=0.2)

    def test_short_reads(self):
        rng = random.Random(12)
        reference = random_reference(10_000, rng)
        for length in (100, 150, 250):  # the paper's Illumina lengths
            reads = simulate_short_reads(
                reference, 8, rng,
                ShortReadProfile.illumina(read_length=length),
            )
            assert all(r.ref_end - r.ref_start == length for r in reads)

    def test_read_longer_than_reference_clipped(self):
        rng = random.Random(13)
        reads = simulate_long_reads(
            "ACGTACGTACGT", 3, rng, LongReadProfile.pacbio(0.0),
        )
        assert all(r.ref_end - r.ref_start == 12 for r in reads)

    def test_count_validation(self):
        rng = random.Random(14)
        with pytest.raises(ValueError):
            simulate_long_reads("ACGT", -1, rng)


class TestGraphSim:
    @pytest.fixture(scope="class")
    def graph(self):
        rng = random.Random(15)
        reference = random_reference(5_000, rng)
        variants = simulate_variants(
            reference, rng,
            VariantProfile(snp_rate=0.01, insertion_rate=0.002,
                           deletion_rate=0.002, sv_rate=0.0),
        )
        return build_graph(reference, variants).graph

    def test_sampled_path_is_valid_walk(self, graph):
        rng = random.Random(16)
        for _ in range(20):
            fragment, node, offset, path = sample_path(graph, 200, rng)
            assert path[0] == node
            for src, dst in zip(path, path[1:]):
                assert dst in graph.successors(src)
            spelled = graph.sequence_of(path[0])[offset:] + "".join(
                graph.sequence_of(n) for n in path[1:]
            )
            assert spelled.startswith(fragment)

    def test_simulated_reads_have_truth(self, graph):
        rng = random.Random(17)
        reads = simulate_graph_reads(graph, 10, 150, rng,
                                     ErrorModel.illumina(0.01))
        assert len(reads) == 10
        for read in reads:
            assert read.path
            assert read.start_node == read.path[0]
            assert len(read.sequence) > 0

    def test_zero_error_reads_spell_paths(self, graph):
        rng = random.Random(18)
        reads = simulate_graph_reads(graph, 5, 100, rng, ErrorModel(0.0))
        for read in reads:
            assert read.errors == 0
