"""Tests for GFA import/export."""

from __future__ import annotations

import io

import pytest

from repro.graph.genome_graph import GenomeGraph
from repro.graph.gfa import GfaFormatError, read_gfa, write_gfa


def diamond() -> GenomeGraph:
    graph = GenomeGraph("diamond")
    a, b, c, d = (graph.add_node(s) for s in ("ACG", "T", "G", "ACGT"))
    graph.add_edge(a, b)
    graph.add_edge(a, c)
    graph.add_edge(b, d)
    graph.add_edge(c, d)
    return graph


class TestWrite:
    def test_format(self):
        buffer = io.StringIO()
        write_gfa(diamond(), buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("H")
        assert "S\t0\tACG" in lines
        assert "L\t0\t+\t1\t+\t0M" in lines


class TestRead:
    def test_roundtrip(self):
        buffer = io.StringIO()
        original = diamond()
        write_gfa(original, buffer)
        buffer.seek(0)
        parsed = read_gfa(buffer)
        assert parsed.node_count == original.node_count
        assert sorted(parsed.edges()) == sorted(original.edges())
        assert [n.sequence for n in parsed.nodes()] == \
            [n.sequence for n in original.nodes()]

    def test_roundtrip_file(self, tmp_path, small_graph):
        path = tmp_path / "graph.gfa"
        write_gfa(small_graph, path)
        parsed = read_gfa(path)
        assert parsed.node_count == small_graph.node_count
        assert parsed.edge_count == small_graph.edge_count
        assert parsed.total_sequence_length == \
            small_graph.total_sequence_length

    def test_arbitrary_segment_names(self):
        text = "S\tfoo\tAC\nS\tbar\tGT\nL\tfoo\t+\tbar\t+\t0M\n"
        graph = read_gfa(io.StringIO(text))
        assert graph.node_count == 2
        assert list(graph.edges()) == [(0, 1)]

    def test_links_before_segments_accepted(self):
        text = "L\ta\t+\tb\t+\t0M\nS\ta\tAC\nS\tb\tGT\n"
        graph = read_gfa(io.StringIO(text))
        assert list(graph.edges()) == [(0, 1)]

    def test_path_lines_ignored(self):
        text = "S\ta\tAC\nP\tp1\ta+\t*\n"
        assert read_gfa(io.StringIO(text)).node_count == 1

    def test_duplicate_segment_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("S\ta\tAC\nS\ta\tGT\n"))

    def test_reverse_strand_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("S\ta\tAC\nS\tb\tGT\nL\ta\t+\tb\t-\t0M\n"))

    def test_star_sequence_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("S\ta\t*\n"))

    def test_unknown_record_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("Z\tx\n"))

    def test_link_to_missing_segment_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("S\ta\tAC\nL\ta\t+\tb\t+\t0M\n"))

    def test_nonzero_overlap_rejected(self):
        with pytest.raises(GfaFormatError):
            read_gfa(io.StringIO("S\ta\tAC\nS\tb\tGT\nL\ta\t+\tb\t+\t5M\n"))
