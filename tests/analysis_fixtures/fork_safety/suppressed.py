"""Fixture: a sanctioned per-process initializer cache."""

_WORKER_STATE = None


def cache_worker_init(state):
    global _WORKER_STATE
    # Per-process cache by design; never read parent-side.
    _WORKER_STATE = state  # repro: allow[fork-safety]
