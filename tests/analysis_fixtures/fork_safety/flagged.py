"""Fixture: worker code violating every fork-safety check."""
import threading

_CACHE = {}
_COUNT = 0
_RESULTS = []


def shared_worker_run(item):
    global _COUNT
    _COUNT = _COUNT + 1
    _CACHE[item] = True
    _RESULTS.append(item)
    return item


class HandleWorkerFactory:
    def __init__(self, path):
        self.handle = open(path, "rb")
        self.lock = threading.Lock()

    def __call__(self):
        return self.handle.read()


def build_pool(PersistentPool, items):
    return PersistentPool(lambda: items, 2)


class RequestBatcher:
    def drain(self, items):
        _RESULTS.extend(items)
        return items


def build_mapper_pool(mapper, items):
    return mapper.pool(lambda: items, 2)
