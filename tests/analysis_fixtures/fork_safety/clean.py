"""Fixture: fork-safe worker code.

Workers only read module state and write locals; the factory carries
a path (picklable), opening the handle worker-side.
"""

_TABLE = {"a": 1, "b": 2}


def lookup_worker_run(item):
    local_cache = {}
    local_cache[item] = _TABLE.get(item, 0)
    results = []
    results.append(local_cache[item])
    return results


class PathWorkerFactory:
    def __init__(self, path):
        self.path = str(path)

    def __call__(self):
        with open(self.path, "rb") as handle:
            return handle.read()


def build_pool(PersistentPool, factory):
    return PersistentPool(factory, 2)


class RequestBatcher:
    def __init__(self):
        self.pending = []

    def drain(self, items):
        self.pending.extend(items)
        return list(self.pending)


def build_mapper_pool(mapper):
    return mapper.pool(2)
