"""Fixture (impersonates an align-layer module): upward imports."""
from repro.core.pipeline import PersistentPool

import repro.hw.bitalign_unit

from repro.api import Mapper

__all__ = ["PersistentPool", "repro", "Mapper"]
