"""Fixture (impersonates an align-layer module): lawful imports.

Same-layer and downward imports are fine; the core *vocabulary*
module (repro.core.alignment) is layer 0 by design; TYPE_CHECKING
imports create no runtime dependency.
"""
from typing import TYPE_CHECKING

from repro.align.genasm import genasm_align
from repro.core.alignment import Cigar
from repro.seq import encode

if TYPE_CHECKING:
    from repro.core.mapper import MappingResult

__all__ = ["genasm_align", "Cigar", "encode", "MappingResult"]
