"""Fixture (impersonates an align-layer module): sanctioned edge."""
# Read-only consultation of the hardware model this kernel mirrors.
from repro.hw.bitalign_unit import BitAlignCycleModel  # repro: allow[layering]

__all__ = ["BitAlignCycleModel"]
