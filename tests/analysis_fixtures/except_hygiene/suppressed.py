"""Fixture: a documented best-effort cleanup suppression."""


def best_effort_cleanup(handles):
    for handle in handles:
        try:
            handle.close()
        except Exception:  # repro: allow[except-hygiene]
            # Best-effort shutdown: a failed close must not mask the
            # original error being propagated by the caller.
            pass
