"""Fixture: typed, handled, or translated exceptions only."""
import sys


def careful(records):
    total = 0
    for record in records:
        try:
            total += int(record)
        except ValueError:
            continue
    try:
        return total / len(records)
    except ZeroDivisionError:
        return None


def translate(loader, path):
    try:
        return loader(path)
    except Exception as exc:
        # Broad catch is fine when the error is re-raised/translated.
        print(f"failed to load {path}: {exc}", file=sys.stderr)
        raise
