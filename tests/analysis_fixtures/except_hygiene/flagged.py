"""Fixture: swallowed exceptions."""


def swallow_everything(records):
    total = 0
    for record in records:
        try:
            total += int(record)
        except:  # noqa: E722
            continue
    try:
        return total / len(records)
    except Exception:
        pass
    return None
