"""Fixture: every statement below violates the determinism rule."""
import random
import time

import numpy as np

choice = random.random()
rng = random.Random()
generator = np.random.default_rng()
legacy = np.random.randint(0, 10)
stamp = time.time()
