"""Fixture: a documented wall-clock read carrying a suppression."""
import time

# Benchmark wall-clock label only, never fed into results.
stamp = time.time()  # repro: allow[determinism]
