"""Fixture: seeded generators and measurement clocks are allowed."""
import random
import time

import numpy as np

rng = random.Random(1234)
value = rng.random()
generator = np.random.default_rng(7)
started = time.perf_counter()
elapsed_ns = time.monotonic_ns()
