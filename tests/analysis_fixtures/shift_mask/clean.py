"""Fixture (impersonates a kernel module): the masked-shift idiom."""
import numpy as np

vec = np.zeros(4, dtype=np.uint64)
one = np.uint64(1)
word_mask = np.uint64(0xFFFFFFFFFFFFFFFF)

masked = (vec << one) & word_mask
bit = (vec[0] >> one) & one
wrapped = np.uint64(vec[1] << one)
# Mask-building shifts are the idiom, not a violation.
top_mask = vec >> np.uint64(63)
followup = vec << one
followup = followup & word_mask
