"""Fixture (impersonates a kernel module): suppressed shift."""
import numpy as np

vec = np.zeros(4, dtype=np.uint64)
one = np.uint64(1)

# High bits deliberately discarded by the caller.
spill = vec << one  # repro: allow[shift-mask]
