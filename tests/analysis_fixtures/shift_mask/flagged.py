"""Fixture (impersonates a kernel module): unmasked uint64 shifts."""
import numpy as np

vec = np.zeros(4, dtype=np.uint64)
one = np.uint64(1)

shifted = vec << one
walked = vec[0] >> one
