"""Fixture (impersonates a kernel module): explicit dtypes."""
import numpy as np

state = np.zeros(8, dtype=np.uint64)
table = np.array([1, 2, 3], dtype=np.int64)
counts = np.arange(16, dtype=np.uint32)
positional = np.zeros(4, np.uint64)
