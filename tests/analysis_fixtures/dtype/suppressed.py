"""Fixture (impersonates a kernel module): suppressed inference."""
import numpy as np

# Float scratch buffer, never packed or serialized.
scratch = np.zeros(8)  # repro: allow[dtype]
