"""Fixture (impersonates a kernel module): inferred dtypes."""
import numpy as np

state = np.zeros(8)
table = np.array([1, 2, 3])
counts = np.arange(16)
