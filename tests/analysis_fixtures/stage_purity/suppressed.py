"""Fixture: a documented config write carrying a suppression."""


class MigrationStage:
    def __init__(self, config):
        self.config = config

    def upgrade(self):
        # One-shot config migration before the pipeline starts.
        self.config.version = 2  # repro: allow[stage-purity]
