"""Fixture: a pipeline stage mutating its captured config."""


class GreedyStage:
    def __init__(self, config):
        self.config = config
        self.window = config

    def process(self, item):
        self.config.k = self.config.k + 1
        self.window.width += 2
        setattr(self.config, "mode", "greedy")
        return item
