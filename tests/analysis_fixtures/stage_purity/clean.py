"""Fixture: a pure stage — reads config, owns its mutable state."""
import dataclasses


class CountingStage:
    def __init__(self, config):
        self.config = config
        self._processed = 0

    def process(self, item):
        self._processed += 1
        k = self.config.k
        if k > 0:
            # Per-run variation copies the config instead of editing.
            local = dataclasses.replace(self.config, k=k - 1)
            return item, local
        return item, self.config
