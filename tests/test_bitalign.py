"""Tests for BitAlign — the paper's core algorithm (Algorithm 1).

The decisive property: BitAlign's fitting-alignment distance equals the
PaSGAL-style DP ground truth on arbitrary DAGs, and its traceback
replays exactly.  On chains it must also equal the linear aligners.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp_graph import graph_distance
from repro.align.dp_linear import semiglobal_distance
from repro.align.genasm import genasm_distance
from repro.core.alignment import replay_alignment
from repro.core.bitalign import bitalign, bitalign_distance
from repro.graph.builder import Variant, build_graph
from repro.graph.genome_graph import GenomeGraph
from repro.graph.linearize import linearize
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
pattern_strategy = st.text(alphabet="ACGT", min_size=1, max_size=20)


def chain(text: str):
    return linearize(GenomeGraph.from_linear(text, node_length=3))


def random_variant_graph(seed: int, min_len: int = 40, max_len: int = 150):
    rng = random.Random(seed)
    reference = random_reference(rng.randint(min_len, max_len), rng)
    profile = VariantProfile(
        snp_rate=0.05, insertion_rate=0.02, deletion_rate=0.02,
        sv_rate=0.002, sv_min=5, sv_max=15, small_indel_max=4,
    )
    variants = simulate_variants(reference, rng, profile)
    built = build_graph(reference, variants)
    return linearize(built.graph), reference, rng


class TestKnownCases:
    def test_exact_backbone_match(self):
        built = build_graph("ACGTTACGT", [Variant(4, 5, "G")])
        lin = linearize(built.graph)
        result = bitalign(lin, "ACGTTACGT", k=2)
        assert result is not None
        assert result.distance == 0

    def test_exact_variant_match(self):
        built = build_graph("ACGTTACGT", [Variant(4, 5, "G")])
        lin = linearize(built.graph)
        result = bitalign(lin, "ACGTGACGT", k=2)
        assert result is not None
        assert result.distance == 0
        # The path must route through the alt node.
        nodes = {lin.node_ids[p] for p in result.path}
        alt_node = built.alt_nodes[0]
        assert alt_node in nodes

    def test_fig1_all_haplotypes_align_exactly(self):
        built = build_graph(
            "ACGTACGT",
            [Variant(3, 4, "G"), Variant(4, 4, "T"), Variant(3, 4, "")],
        )
        lin = linearize(built.graph)
        for haplotype in ["ACGTACGT", "ACGGACGT", "ACGTTACGT", "ACGACGT"]:
            result = bitalign(lin, haplotype, k=3)
            assert result is not None, haplotype
            assert result.distance == 0, haplotype

    def test_deletion_hop(self):
        # Deleting "TT" gives the haplotype ACGTACGT.
        built = build_graph("ACGTTTACGT", [Variant(4, 6, "")])
        lin = linearize(built.graph)
        result = bitalign(lin, "ACGTACGT", k=2)
        assert result is not None
        assert result.distance == 0

    def test_over_threshold_returns_none(self):
        lin = chain("AAAAAAAA")
        assert bitalign(lin, "TTTT", k=2) is None

    def test_empty_graph(self):
        from repro.graph.linearize import LinearizedGraph
        lin = LinearizedGraph(chars="", successors=[], node_ids=[],
                              node_offsets=[])
        assert bitalign(lin, "ACG", k=3) is not None
        assert bitalign(lin, "ACG", k=2) is None

    def test_parameter_validation(self):
        lin = chain("ACGT")
        with pytest.raises(ValueError):
            bitalign(lin, "", k=2)
        with pytest.raises(ValueError):
            bitalign(lin, "A", k=-1)

    def test_anchored_start(self):
        lin = chain("ACGTACGT")
        # Restrict the start to position 4: the second ACGT.
        result = bitalign(lin, "ACGT", k=1, anchors=[4])
        assert result is not None
        assert result.path[0] == 4


class TestChainEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(dna, pattern_strategy)
    def test_matches_linear_genasm(self, text, pattern):
        k = min(len(pattern), 6)
        ours = bitalign_distance(chain(text), pattern, k)
        linear = genasm_distance(text, pattern, k)
        if linear is None:
            assert ours is None
        else:
            assert ours is not None
            assert ours[0] == linear[0]

    @settings(max_examples=150, deadline=None)
    @given(dna, pattern_strategy)
    def test_matches_linear_dp(self, text, pattern):
        dp, _ = semiglobal_distance(text, pattern)
        k = min(len(pattern), dp + 2)
        ours = bitalign_distance(chain(text), pattern, k)
        if dp <= k:
            assert ours is not None and ours[0] == dp
        else:
            assert ours is None


class TestGraphEquivalence:
    """BitAlign == graph DP on random variant graphs."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_distance_matches_dp_random_reads(self, seed):
        lin, reference, rng = random_variant_graph(seed)
        read = "".join(rng.choice("ACGT")
                       for _ in range(rng.randint(4, 25)))
        dp, _ = graph_distance(lin, read)
        k = min(len(read), dp + 2)
        ours = bitalign_distance(lin, read, k)
        assert ours is not None
        assert ours[0] == dp

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_distance_matches_dp_mutated_backbone_reads(self, seed):
        lin, reference, rng = random_variant_graph(seed)
        start = rng.randint(0, max(0, len(reference) - 30))
        fragment = reference[start:start + rng.randint(10, 30)]
        if not fragment:
            return
        # Mutate a couple of bases so edits are exercised.
        chars = list(fragment)
        for _ in range(rng.randint(0, 3)):
            chars[rng.randrange(len(chars))] = rng.choice("ACGT")
        read = "".join(chars)
        dp, _ = graph_distance(lin, read)
        ours = bitalign_distance(lin, read, k=min(len(read), dp + 1))
        assert ours is not None
        assert ours[0] == dp

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_traceback_replays_and_follows_edges(self, seed):
        lin, reference, rng = random_variant_graph(seed)
        start = rng.randint(0, max(0, len(reference) - 25))
        fragment = reference[start:start + rng.randint(8, 25)]
        if not fragment:
            return
        chars = list(fragment)
        for _ in range(rng.randint(0, 2)):
            chars[rng.randrange(len(chars))] = rng.choice("ACGT")
        read = "".join(chars)
        dp, _ = graph_distance(lin, read)
        result = bitalign(lin, read, k=min(len(read), dp + 2))
        assert result is not None
        assert result.distance == dp
        assert replay_alignment(result.cigar, read, result.reference) == dp
        for src, dst in zip(result.path, result.path[1:]):
            assert dst in lin.successors[src]


class TestHopLimit:
    def test_hop_limit_can_degrade_alignment(self):
        # A long deletion's hop exceeds the limit; the exact aligner
        # uses it, the limited one pays edits instead.
        built = build_graph("ACGT" + "T" * 30 + "ACGT",
                            [Variant(4, 34, "")])
        exact = linearize(built.graph)
        limited = linearize(built.graph, hop_limit=12)
        read = "ACGTACGT"
        exact_result = bitalign_distance(exact, read, k=8)
        limited_result = bitalign_distance(limited, read, k=8)
        assert exact_result is not None and exact_result[0] == 0
        assert limited_result is not None
        assert limited_result[0] > 0

    def test_hop_limit_matches_dp_on_same_truncated_graph(self):
        built = build_graph("ACGT" + "T" * 30 + "ACGT",
                            [Variant(4, 34, "")])
        limited = linearize(built.graph, hop_limit=12)
        read = "ACGTACGT"
        dp, _ = graph_distance(limited, read)
        ours = bitalign_distance(limited, read, k=8)
        assert ours is not None and ours[0] == dp
