"""Shared fixtures and strategies for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.builder import build_graph
from repro.sim.reference import random_reference
from repro.sim.variants import VariantProfile, simulate_variants


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_reference(rng) -> str:
    """A 5 kbp random reference."""
    return random_reference(5_000, rng)


@pytest.fixture
def small_built(small_reference, rng):
    """A variation graph over the 5 kbp reference with a dense variant
    set (rates scaled up so small graphs still contain bubbles)."""
    profile = VariantProfile(
        snp_rate=0.01, insertion_rate=0.002, deletion_rate=0.002,
        sv_rate=0.0002, sv_min=20, sv_max=60,
    )
    variants = simulate_variants(small_reference, rng, profile)
    return build_graph(small_reference, variants, name="small")


@pytest.fixture
def small_graph(small_built):
    return small_built.graph
