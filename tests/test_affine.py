"""Tests for affine-gap (Gotoh) alignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.affine import (
    AffineScoring,
    AffineSizeError,
    affine_align,
    affine_cost,
)
from repro.align.dp_linear import edit_distance, semiglobal_distance
from repro.core.alignment import replay_alignment

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestScoring:
    def test_defaults(self):
        scoring = AffineScoring()
        assert scoring.gap_open > 0

    def test_edit_distance_preset(self):
        scoring = AffineScoring.edit_distance()
        assert (scoring.mismatch, scoring.gap_open,
                scoring.gap_extend) == (1, 0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineScoring(mismatch=-1)
        with pytest.raises(ValueError):
            AffineScoring(gap_extend=0)


class TestEditDistanceEquivalence:
    """With unit costs and no open penalty, Gotoh == Levenshtein."""

    @settings(max_examples=120, deadline=None)
    @given(dna, dna)
    def test_global_matches_levenshtein(self, a, b):
        cost = affine_cost(a, b, AffineScoring.edit_distance(),
                           fitting=False)
        assert cost == edit_distance(a, b)

    @settings(max_examples=120, deadline=None)
    @given(dna, dna)
    def test_fitting_matches_semiglobal(self, reference, read):
        cost = affine_cost(reference, read,
                           AffineScoring.edit_distance(), fitting=True)
        expected, _ = semiglobal_distance(reference, read)
        assert cost == expected


class TestAffineBehaviour:
    def test_one_long_gap_beats_scattered_gaps(self):
        # Reference has a 6-base block missing from the read.
        reference = "ACGTAC" + "GGGGGG" + "TACGTT"
        read = "ACGTACTACGTT"
        result = affine_align(reference, read, AffineScoring(),
                              fitting=False)
        # The alignment must use a single 6-long deletion run.
        deletion_runs = [length for op, length in result.cigar.ops
                         if op == "D"]
        assert deletion_runs == [6]

    def test_gap_open_steers_away_from_split_gaps(self):
        reference = "AAAACCCCGGGG"
        read = "AAAAGGGG"
        cheap_open = affine_cost(reference, read,
                                 AffineScoring(mismatch=4, gap_open=0,
                                               gap_extend=1),
                                 fitting=False)
        pricey_open = affine_cost(reference, read,
                                  AffineScoring(mismatch=4, gap_open=8,
                                                gap_extend=1),
                                  fitting=False)
        assert pricey_open == cheap_open + 8  # one gap, opened once

    def test_exact_fitting_costs_zero(self):
        result = affine_align("AAACGTACGTAAA", "ACGTACGT")
        assert result.cost == 0
        assert str(result.cigar) == "8="
        assert result.ref_start == 2

    def test_empty_reference(self):
        result = affine_align("", "ACGT")
        assert result.cigar.insertions == 4

    def test_empty_read_rejected(self):
        with pytest.raises(ValueError):
            affine_align("ACGT", "")

    def test_size_guard(self):
        with pytest.raises(AffineSizeError):
            affine_align("A" * 200, "A" * 200, max_cells=100)


class TestTraceback:
    @settings(max_examples=120, deadline=None)
    @given(dna, dna)
    def test_replay_validates(self, reference, read):
        result = affine_align(reference, read, AffineScoring(),
                              fitting=True)
        consumed = reference[result.ref_start:result.ref_end]
        replay_alignment(result.cigar, read, consumed)

    @settings(max_examples=120, deadline=None)
    @given(dna, dna)
    def test_cigar_cost_equals_reported_cost(self, reference, read):
        scoring = AffineScoring()
        result = affine_align(reference, read, scoring, fitting=True)
        cost = result.cigar.mismatches * scoring.mismatch
        for op, length in result.cigar.ops:
            if op in "ID":
                cost += scoring.gap_open \
                    + scoring.gap_extend * length
        assert cost == result.cost
