"""Tests for the experiment drivers (fast, model-based ones).

The benchmarks exercise these too; testing them here keeps
``pytest tests/`` self-sufficient and pins the headline numbers.
"""

from __future__ import annotations

import pytest

from repro.eval import experiments as ex
from repro.eval.report import format_table


class TestModelDrivers:
    def test_fig15_rows(self):
        rows = ex.fig15_long_reads()
        assert len(rows) == 4
        for row in rows:
            assert row["SeGraM_reads_per_s (model)"] > \
                row["vg_reads_per_s (derived)"] > \
                row["GraphAligner_reads_per_s (derived)"]

    def test_fig16_rows(self):
        rows = ex.fig16_short_reads()
        assert [r["dataset"] for r in rows] == \
            ["Illumina-100bp", "Illumina-150bp", "Illumina-250bp"]
        for row in rows:
            assert row["GraphAligner_reads_per_s (derived)"] > \
                row["vg_reads_per_s (derived)"]

    def test_hga_rows(self):
        rows = ex.hga_comparison()
        speedups = [r["speedup (paper)"] for r in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_fig17_model_rows(self):
        rows = ex.fig17_pasgal_model()
        assert len(rows) == 4
        for row in rows:
            assert row["PaSGAL_ms (derived)"] == pytest.approx(
                row["BitAlign_ms (model)"] * row["speedup (paper)"])

    def test_genasm_rows_pin_anchors(self):
        rows = ex.genasm_window_cycles()
        assert rows[0]["cycles_per_window (model)"] == 169
        assert rows[1]["cycles_per_window (model)"] == 272

    def test_s2s_rows(self):
        rows = ex.s2s_accelerators()
        assert {r["accelerator"] for r in rows} == \
            {"GACT (Darwin)", "SillaX (GenAx)", "GenASM"}

    def test_table1_rows_render(self):
        rows = ex.table1_area_power()
        text = format_table(rows, title="t1")
        assert "hop queue" in text

    def test_fig7_rows(self):
        rows = ex.fig7_bucket_sweep(bucket_bits=(8, 12))
        live = [r for r in rows if r["series"].startswith("live")]
        assert len(live) == 2
        assert live[0]["footprint_mb"] < live[1]["footprint_mb"]

    def test_fig13_rows(self):
        rows = ex.fig13_hop_limit(limits=(2, 12))
        coverage = {r["hop_limit"]: r["fraction_of_hops_covered"]
                    for r in rows}
        assert coverage[12] >= coverage[2]
        assert coverage[12] > 0.99


class TestDatasetCache:
    def test_cached_datasets_are_reused(self):
        first = ex._human()
        second = ex._human()
        assert first is second

    def test_dataset_determinism(self):
        from repro.eval.datasets import brca1_like_graph
        a = brca1_like_graph(length=5_000, seed=1)
        b = brca1_like_graph(length=5_000, seed=1)
        assert a.reference == b.reference
        assert a.graph.node_count == b.graph.node_count
