"""Tests for the bounded-memory streaming input subsystem
(repro.io.stream): parity with the materializing readers, gzip
sniffing, truncation/corruption error paths, lockstep mate pairing,
and chunking.
"""

from __future__ import annotations

import gzip
import io

import pytest

from repro.io import fasta
from repro.io.stream import (
    DEFAULT_CHUNK_SIZE,
    ReadChunker,
    TruncatedInputError,
    iter_fasta,
    iter_fastq,
    iter_mate_pairs,
    iter_reads,
    open_text,
    sniff_format,
)

FASTA_TEXT = (
    ">read1 first description\nACGTACGT\nTTGG\n"
    ">read2\nGGGG\n"
    "\n"
    ">read3\ttabbed desc\nAACC\n"
)

FASTQ_TEXT = (
    "@read1 first\nACGTACGT\n+\nIIIIIIII\n"
    "@read2\nGGGG\n+read2\nJJJJ\n"
    "@read3\nTT\n+\nII\n"
)


def _write(tmp_path, name, text, gzipped=False):
    path = tmp_path / name
    if gzipped:
        with gzip.open(path, "wt", encoding="ascii") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="ascii")
    return path


class TestParity:
    """Streamed records match the materializing readers byte for
    byte, for plain, gzipped, and CRLF inputs."""

    @pytest.mark.parametrize("gzipped", [False, True])
    def test_fasta_matches_read_fasta(self, tmp_path, gzipped):
        path = _write(tmp_path, "in.fa", FASTA_TEXT, gzipped)
        assert list(iter_fasta(path)) == fasta.read_fasta(path)

    @pytest.mark.parametrize("gzipped", [False, True])
    def test_fastq_matches_read_fastq(self, tmp_path, gzipped):
        path = _write(tmp_path, "in.fq", FASTQ_TEXT, gzipped)
        assert list(iter_fastq(path)) == fasta.read_fastq(path)

    def test_crlf_tolerated(self, tmp_path):
        crlf = FASTA_TEXT.replace("\n", "\r\n")
        path = _write(tmp_path, "crlf.fa", crlf)
        assert list(iter_fasta(path)) == \
            list(iter_fasta(io.StringIO(FASTA_TEXT)))

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        # A gzipped file without the .gz extension still streams.
        path = _write(tmp_path, "nosuffix.fa", FASTA_TEXT,
                      gzipped=True)
        assert [r.name for r in iter_fasta(path)] == \
            ["read1", "read2", "read3"]

    def test_handle_passed_through_not_closed(self):
        handle = io.StringIO(FASTA_TEXT)
        opened, owned = open_text(handle)
        assert opened is handle
        assert not owned
        records = list(iter_fasta(handle))
        assert len(records) == 3
        assert not handle.closed


class TestSniffing:
    def test_sniff_format(self, tmp_path):
        assert sniff_format(
            _write(tmp_path, "a.fa", FASTA_TEXT)) == "fasta"
        assert sniff_format(
            _write(tmp_path, "a.fq", FASTQ_TEXT)) == "fastq"
        assert sniff_format(io.StringIO("")) == "fasta"
        assert sniff_format(io.StringIO("\n\n")) == "fasta"

    def test_iter_reads_matches_read_sequences(self, tmp_path):
        for name, text in (("r.fa", FASTA_TEXT),
                           ("r.fq", FASTQ_TEXT)):
            path = _write(tmp_path, name, text)
            assert list(iter_reads(path)) == \
                fasta.read_sequences(path)

    def test_iter_reads_gzip_fastq(self, tmp_path):
        path = _write(tmp_path, "r.fq.gz", FASTQ_TEXT, gzipped=True)
        assert [name for name, _ in iter_reads(path)] == \
            ["read1", "read2", "read3"]


class TestErrorPaths:
    def test_truncated_gzip_raises_typed_error(self, tmp_path):
        path = _write(tmp_path, "t.fa.gz", FASTA_TEXT, gzipped=True)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 12])
        with pytest.raises(TruncatedInputError,
                           match="end-of-stream marker"):
            list(iter_fasta(path))

    def test_corrupt_gzip_raises_format_error(self, tmp_path):
        path = _write(tmp_path, "c.fa.gz", FASTA_TEXT, gzipped=True)
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF  # flip a CRC byte in the gzip trailer
        path.write_bytes(bytes(data))
        with pytest.raises(fasta.FastaFormatError):
            list(iter_fasta(path))

    @pytest.mark.parametrize("lines,part", [
        ("@only_header\n", "sequence"),
        ("@r\nACGT\n", "'+' separator"),
        ("@r\nACGT\n+\n", "quality"),
    ])
    def test_fastq_mid_record_eof(self, tmp_path, lines, part):
        path = _write(tmp_path, "mid.fq", FASTQ_TEXT + lines)
        with pytest.raises(TruncatedInputError) as excinfo:
            list(iter_fastq(path))
        message = str(excinfo.value)
        assert "record 3" in message
        assert f"missing {part} line" in message

    def test_truncation_is_a_format_error_subclass(self):
        assert issubclass(TruncatedInputError,
                          fasta.FastaFormatError)

    def test_fastq_bad_separator_still_rejected(self):
        stream = io.StringIO("@r\nACGT\nXXXX\nIIII\n")
        with pytest.raises(fasta.FastaFormatError,
                           match="'\\+' separator"):
            list(iter_fastq(stream))


class TestMatePairs:
    def _mates(self, tmp_path, text1, text2, gz2=False):
        return (_write(tmp_path, "r1.fq", text1),
                _write(tmp_path, "r2.fq.gz" if gz2 else "r2.fq",
                       text2, gzipped=gz2))

    def test_lockstep_pairs(self, tmp_path):
        r1 = "@frag_0/1\nAAAA\n+\nIIII\n@frag_1/1\nCCCC\n+\nIIII\n"
        r2 = "@frag_0/2\nGGGG\n+\nIIII\n@frag_1/2\nTTTT\n+\nIIII\n"
        p1, p2 = self._mates(tmp_path, r1, r2, gz2=True)
        assert list(iter_mate_pairs(p1, p2)) == [
            ("frag_0", "AAAA", "GGGG"),
            ("frag_1", "CCCC", "TTTT"),
        ]

    def test_matches_read_mate_pairs(self, tmp_path):
        r1 = "@a/1\nAA\n+\nII\n@b/1\nCC\n+\nII\n"
        r2 = ">a/2\nGG\n>b/2\nTT\n"  # mixed formats allowed
        p1, p2 = self._mates(tmp_path, r1, r2)
        assert list(iter_mate_pairs(p1, p2)) == \
            fasta.read_mate_pairs(p1, p2)

    def test_name_mismatch_reports_record_index(self, tmp_path):
        r1 = "@a/1\nAA\n+\nII\n@b/1\nCC\n+\nII\n"
        r2 = "@a/2\nGG\n+\nII\n@WRONG/2\nTT\n+\nII\n"
        p1, p2 = self._mates(tmp_path, r1, r2)
        with pytest.raises(fasta.FastaFormatError,
                           match="record 1: mate name mismatch"):
            list(iter_mate_pairs(p1, p2))

    def test_mismatch_raised_before_reading_everything(self):
        # The first divergence raises even though file 2's iterator
        # would later explode: lockstep means record 0 is compared
        # before record 1 is parsed.
        r1 = io.StringIO("@a/1\nAA\n+\nII\n")
        r2 = io.StringIO("@z/2\nGG\n+\nII\n@broken")
        with pytest.raises(fasta.FastaFormatError,
                           match="record 0: mate name mismatch"):
            list(iter_mate_pairs(r1, r2))

    def test_short_file_reports_index_and_side(self, tmp_path):
        r1 = "@a/1\nAA\n+\nII\n@b/1\nCC\n+\nII\n"
        r2 = "@a/2\nGG\n+\nII\n"
        p1, p2 = self._mates(tmp_path, r1, r2)
        with pytest.raises(fasta.FastaFormatError) as excinfo:
            list(iter_mate_pairs(p1, p2))
        message = str(excinfo.value)
        assert "ends at record 1" in message
        assert "r2.fq" in message
        assert "continues" in message


class TestReadChunker:
    def test_fixed_size_chunks_in_order(self):
        chunks = list(ReadChunker(3).chunks(range(8)))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7]]

    def test_exact_multiple_has_no_empty_tail(self):
        assert list(ReadChunker(2).chunks(range(4))) == \
            [[0, 1], [2, 3]]

    def test_empty_input_yields_nothing(self):
        assert list(ReadChunker(4).chunks([])) == []

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            ReadChunker(0)

    def test_default_chunk_size(self):
        assert ReadChunker().chunk_size == DEFAULT_CHUNK_SIZE
